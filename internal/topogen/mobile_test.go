package topogen

import (
	"net/netip"
	"regexp"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/ipalloc"
	"repro/internal/netsim"
)

type mobileFixture struct {
	s   *Scenario
	att *MobileCarrier
	vz  *MobileCarrier
	tmo *MobileCarrier
	// caida is the measurement server the phones probe (San Diego).
	caida *netsim.Host
}

var mfx *mobileFixture

func getMobile(t *testing.T) *mobileFixture {
	t.Helper()
	if mfx != nil {
		return mfx
	}
	s := NewScenario(31)
	mfx = &mobileFixture{
		s:   s,
		att: s.BuildMobileCarrier(ATTMobileProfile()),
		vz:  s.BuildMobileCarrier(VerizonProfile()),
		tmo: s.BuildMobileCarrier(TMobileProfile()),
	}
	caida := &netsim.Host{
		Addr:           netip.MustParseAddr("2001:db8:ca1d:a::1"),
		Router:         s.TransitPoP(geo.MustByName("San Diego").Point),
		ISP:            "caida",
		Loc:            geo.MustByName("San Diego").Point,
		AccessDelay:    200 * time.Microsecond,
		RespondsToPing: true,
	}
	if err := s.Net.AddHost(caida); err != nil {
		t.Fatal(err)
	}
	mfx.caida = caida
	return mfx
}

func TestCarrierInventory(t *testing.T) {
	f := getMobile(t)
	if len(f.att.Regions) != 11 {
		t.Errorf("att-mobile regions = %d, want 11 (Table 7)", len(f.att.Regions))
	}
	if len(f.vz.Regions) != 29 {
		t.Errorf("verizon regions = %d, want 29 (Table 8)", len(f.vz.Regions))
	}
	// PGW counts match the specs.
	for _, c := range []*MobileCarrier{f.att, f.vz, f.tmo} {
		for _, r := range c.Regions {
			if len(r.PGWs) != r.Spec.PGWs {
				t.Errorf("%s/%s PGWs = %d, want %d", c.Profile.Name, r.Spec.Name, len(r.PGWs), r.Spec.PGWs)
			}
		}
	}
}

func TestAttachmentAddressBits(t *testing.T) {
	f := getMobile(t)
	// Attach near Los Angeles: AT&T's VNN region (user byte 0x6c, the
	// paper's example value).
	m := f.att.NewModem()
	at := geo.MustByName("Los Angeles").Point
	a := m.Attach(at)
	if got := ipalloc.V6Bits(a.UserAddr, 32, 8); got != 0x6c {
		t.Errorf("user region bits = %#x, want 0x6c", got)
	}
	if got := ipalloc.V6Bits(a.UserAddr, 0, 32); got != 0x26000380 {
		t.Errorf("user /32 = %#x", got)
	}
	// PGW bits cycle across re-attachments.
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		a := m.Attach(at)
		seen[ipalloc.V6Bits(a.UserAddr, 40, 4)] = true
	}
	if len(seen) != 5 {
		t.Errorf("attachments used %d PGWs, want all 5 in VNN", len(seen))
	}
}

func TestPhoneTracerouteShape(t *testing.T) {
	f := getMobile(t)
	m := f.att.NewModem()
	a := m.Attach(geo.MustByName("Chicago").Point)
	// Hop 1 must be the PGW replying from the user-prefix space with
	// the region and PGW bits (Fig. 16a).
	r1 := f.s.Net.Probe(f.s.Epoch(), netsim.ProbeSpec{Src: a.Host.Addr, Dst: f.caida.Addr, TTL: 1, FlowID: 1})
	if r1.Type != netsim.TTLExceeded {
		t.Fatalf("hop1 = %v", r1.Type)
	}
	if got := ipalloc.V6Bits(r1.From, 0, 32); got != 0x26000380 {
		t.Errorf("hop1 /32 = %#x, want user prefix", got)
	}
	if got := ipalloc.V6Bits(r1.From, 32, 8); got != 0xb0 {
		t.Errorf("hop1 region bits = %#x, want 0xb0 (CHC)", got)
	}
	// Deeper hops come from the infrastructure prefix with region bits
	// 32-47 (Fig. 16a hops 3-4).
	var sawInfra bool
	for ttl := uint8(2); ttl <= 6; ttl++ {
		r := f.s.Net.Probe(f.s.Epoch(), netsim.ProbeSpec{Src: a.Host.Addr, Dst: f.caida.Addr, TTL: ttl, FlowID: 1})
		if r.Type != netsim.TTLExceeded {
			continue
		}
		if ipalloc.V6Bits(r.From, 0, 32) == 0x26000300 &&
			ipalloc.V6Bits(r.From, 32, 16) == 0x20b0 {
			sawInfra = true
		}
	}
	if !sawInfra {
		t.Error("no infrastructure hop with CHC region bits")
	}
	// The phone reaches the external destination.
	end := f.s.Net.Probe(f.s.Epoch(), netsim.ProbeSpec{Src: a.Host.Addr, Dst: f.caida.Addr, TTL: 30, FlowID: 1})
	if end.Type != netsim.EchoReply {
		t.Errorf("destination unreachable: %v", end.Type)
	}
}

func TestInfraBlocksDstProbes(t *testing.T) {
	f := getMobile(t)
	m := f.vz.NewModem()
	a := m.Attach(geo.MustByName("Vista").Point)
	pgw := a.PGW.Router
	// Probing the PGW's own address gets nothing, even from inside.
	if r := f.s.Net.Probe(f.s.Epoch(), netsim.ProbeSpec{Src: a.Host.Addr, Dst: pgw.Canonical, TTL: 30}); r.Type != netsim.Timeout {
		t.Errorf("packet-core infrastructure answered a dst-addressed probe: %v", r.Type)
	}
}

func TestVerizonSpeedtestNames(t *testing.T) {
	f := getMobile(t)
	found := 0
	for _, e := range f.s.DNS.ScanSnapshot(mustCompile(`\.ost\.myvzw\.com$`)) {
		_ = e
		found++
	}
	if found != len(f.vz.Regions) {
		t.Errorf("speedtest names = %d, want %d", found, len(f.vz.Regions))
	}
}

func TestTMobileGulfAnomaly(t *testing.T) {
	f := getMobile(t)
	m := f.tmo.NewModem()
	pensacola := geo.MustByName("Pensacola").Point
	// The two nearest T-Mobile sites to the Gulf coast are far away;
	// one should be the Charleston, SC site.
	sawDistant := false
	for i := 0; i < 6; i++ {
		a := m.Attach(pensacola)
		d := geo.DistanceKm(pensacola, a.PGW.Region.City.Point)
		if d > 500 {
			sawDistant = true
		}
	}
	if !sawDistant {
		t.Error("Gulf-coast attachments never landed on a distant EdgeCO")
	}
}

func TestTMobileUsesMultipleProviders(t *testing.T) {
	f := getMobile(t)
	m := f.tmo.NewModem()
	at := geo.MustByName("Chicago").Point
	providers := map[string]bool{}
	for i := 0; i < 8; i++ {
		a := m.Attach(at)
		providers[a.PGW.Region.Provider] = true
	}
	if len(providers) < 2 {
		t.Errorf("attachments used %d providers, want >= 2", len(providers))
	}
}

func TestMobileLatencyGeography(t *testing.T) {
	f := getMobile(t)
	// AT&T from Montana: the nearest mobile datacenter is far away, so
	// latency to San Diego is much higher than from Los Angeles.
	mMT := f.att.NewModem()
	aMT := mMT.Attach(geo.MustByName("Billings").Point)
	mLA := f.att.NewModem()
	aLA := mLA.Attach(geo.MustByName("Los Angeles").Point)
	rttOf := func(a Attachment) time.Duration {
		var min time.Duration
		for i := 0; i < 10; i++ {
			r := f.s.Net.Probe(f.s.Epoch(), netsim.ProbeSpec{Src: a.Host.Addr, Dst: f.caida.Addr, TTL: 40, Seq: uint32(i), FlowID: 9})
			if r.Type != netsim.EchoReply {
				continue
			}
			if min == 0 || r.RTT < min {
				min = r.RTT
			}
		}
		return min
	}
	mt, la := rttOf(aMT), rttOf(aLA)
	if mt == 0 || la == 0 {
		t.Fatalf("rtts: MT=%v LA=%v", mt, la)
	}
	if mt < la+10*time.Millisecond {
		t.Errorf("Montana RTT %v should far exceed LA RTT %v", mt, la)
	}
}

func mustCompile(s string) *regexp.Regexp { return regexp.MustCompile(s) }

func TestVerizonStationarySwitching(t *testing.T) {
	f := getMobile(t)
	m := f.vz.NewModem()
	at := geo.MustByName("Vista").Point
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		a := m.Attach(at)
		counts[a.PGW.Region.Spec.Name]++
	}
	if counts["VISTCA"] == 0 {
		t.Fatalf("never attached to the home site: %v", counts)
	}
	// §7.2.2: occasional switches to the neighboring EdgeCO of the same
	// backbone region (AZUSCA under LAX), and nowhere else.
	if counts["AZUSCA"] == 0 {
		t.Errorf("no stationary switches to the neighbor site: %v", counts)
	}
	for name, n := range counts {
		if name != "VISTCA" && name != "AZUSCA" {
			t.Errorf("attached to %s (%d times); switching must stay within the backbone region", name, n)
		}
	}
	if frac := float64(counts["AZUSCA"]) / 300; frac > 0.15 {
		t.Errorf("switch fraction %.2f; should be occasional", frac)
	}
}

// TestInCarrierPathsCoincide pins the §7.1.1 observation that let the
// paper reduce to a single traceroute destination: within the mobile
// network, paths to different external destinations are identical.
func TestInCarrierPathsCoincide(t *testing.T) {
	f := getMobile(t)
	s := f.s
	other := &netsim.Host{
		Addr:           netip.MustParseAddr("2001:db8:a5:2::1"),
		Router:         s.TransitPoP(geo.MustByName("Chicago").Point),
		ISP:            "neighbor-as",
		Loc:            geo.MustByName("Chicago").Point,
		RespondsToPing: true,
	}
	if err := s.Net.AddHost(other); err != nil {
		t.Fatal(err)
	}
	m := f.att.NewModem()
	a := m.Attach(geo.MustByName("Dallas").Point)
	inCarrier := func(dst netip.Addr) []netip.Addr {
		var hops []netip.Addr
		for ttl := uint8(1); ttl <= 12; ttl++ {
			r := s.Net.Probe(s.Epoch(), netsim.ProbeSpec{Src: a.Host.Addr, Dst: dst, TTL: ttl, FlowID: 1})
			if r.Type != netsim.TTLExceeded {
				continue
			}
			// In-carrier hops live in the user or infrastructure space.
			p := ipalloc.V6Bits(r.From, 0, 32)
			if p == 0x26000380 || p == 0x26000300 {
				hops = append(hops, r.From)
			}
		}
		return hops
	}
	h1 := inCarrier(f.caida.Addr)
	h2 := inCarrier(other.Addr)
	if len(h1) == 0 {
		t.Fatal("no in-carrier hops")
	}
	if len(h1) != len(h2) {
		t.Fatalf("in-carrier hop counts differ: %v vs %v", h1, h2)
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Errorf("in-carrier hop %d differs: %v vs %v", i, h1[i], h2[i])
		}
	}
}
