package topogen

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"repro/internal/clli"
	"repro/internal/geo"
	"repro/internal/ipalloc"
	"repro/internal/netsim"
)

// MobileArch is a carrier's regional aggregation architecture (Fig. 17).
type MobileArch uint8

const (
	// ArchSingleEdge: one EdgeCO (mobile datacenter) per region with
	// several PGWs, aggregating to the carrier's own backbone (AT&T).
	ArchSingleEdge MobileArch = iota
	// ArchMultiEdge: several EdgeCOs share one BackboneCO, covering
	// non-overlapping sub-areas (Verizon).
	ArchMultiEdge
	// ArchMultiBackbone: several PGW sites per region, each homed to a
	// different wholesale backbone provider (T-Mobile).
	ArchMultiBackbone
)

func (a MobileArch) String() string {
	switch a {
	case ArchSingleEdge:
		return "single-edge"
	case ArchMultiEdge:
		return "multi-edge"
	case ArchMultiBackbone:
		return "multi-backbone"
	}
	return "unknown"
}

// MobileRegionSpec describes one mobile region in a profile.
type MobileRegionSpec struct {
	// Name labels the region (the paper's Table 7/8 site codes).
	Name string
	// City anchors the region's EdgeCO (mobile datacenter).
	City string
	// PGWs is the packet-gateway count at this site.
	PGWs int
	// UserBits is the region's value in the user-address region field.
	UserBits uint64
	// RouterBits is the region's value in the infrastructure-address
	// region field.
	RouterBits uint64
	// Backbone optionally groups several regions under one backbone
	// region (Verizon); empty means the region has its own exit.
	Backbone string
	// Provider selects the wholesale backbone provider for
	// multi-backbone carriers.
	Provider string
}

// MobileProfile parameterizes a carrier.
type MobileProfile struct {
	Name string
	Arch MobileArch
	// Address plan (Fig. 16): field positions inside user and router
	// addresses.
	UserBase    netip.Addr
	RouterBase  netip.Addr
	UserRegion  ipalloc.Field // region field in user addresses
	UserPGW     ipalloc.Field // PGW field in user addresses
	RouterField ipalloc.Field // region field in router addresses
	RouterPGW   ipalloc.Field // PGW field in router addresses
	// SpeedtestRDNS emits per-EdgeCO speedtest hosts with rDNS names
	// (Verizon's *.ost.myvzw.com validation hook).
	SpeedtestRDNS bool
	// GlobalPGWIDs numbers packet gateways across the whole carrier
	// instead of per region (T-Mobile's /40s are carrier-global).
	GlobalPGWIDs bool
	// AttachNearestK lets a phone register with any of its K nearest
	// sites (T-Mobile's distributed attachment, §7.2.3).
	AttachNearestK int
	// SwitchProb occasionally re-attaches a stationary phone to the
	// neighboring EdgeCO of the same backbone region (observed for
	// Verizon, §7.2.2).
	SwitchProb float64
	// MidHops inserts routers between each PGW and the EdgeCO core:
	// silent ones reproduce the "*" hops of Fig. 16a/b, addressed ones
	// reproduce T-Mobile's responding ULA hops (Fig. 16c).
	MidHops []MidHopSpec
	// BackboneRDNS names the carrier's backbone hops (alter.net-style).
	BackboneRDNS string
	Regions      []MobileRegionSpec
}

// MidHopSpec describes one packet-core hop between PGW and EdgeCO core.
type MidHopSpec struct {
	// Base is the address space of the hop's interfaces (e.g. a ULA
	// prefix); the zero Addr reuses the carrier's RouterBase.
	Base netip.Addr
	// Silent hops never answer (Fig. 16's "*" rows).
	Silent bool
}

// PGW is one packet gateway in the ground truth.
type PGW struct {
	// ID is the region-local index; UserValue is the value stamped into
	// the user-address PGW field (region-local or carrier-global per
	// the profile).
	ID        int
	UserValue uint64
	Region    *MobileRegion
	Router    *netsim.Router
	// ranRouter is the phone attachment point below the PGW.
	ranRouter *netsim.Router
}

// MobileRegion is ground truth for one mobile region.
type MobileRegion struct {
	Spec     MobileRegionSpec
	City     geo.City
	PGWs     []*PGW
	Backbone string
	Provider string
}

// MobileCarrier is a generated carrier plus its ground truth.
type MobileCarrier struct {
	Profile MobileProfile
	Regions []*MobileRegion

	scenario *Scenario
	hostSeq  int
}

// BuildMobileCarrier generates a carrier: per region an EdgeCO with its
// PGWs and core routers, wired to a backbone exit (own backbone CO,
// shared backbone-region CO, or a wholesale provider's router), with
// IPv6 addresses laid out per the profile's Fig. 16 plan.
func (s *Scenario) BuildMobileCarrier(p MobileProfile) *MobileCarrier {
	c := &MobileCarrier{Profile: p, scenario: s}
	// Backbone-region exits are shared across regions (Verizon).
	exits := map[string]*netsim.Router{}
	exitFor := func(name string, city geo.City) *netsim.Router {
		if r, ok := exits[name]; ok {
			return r
		}
		r := s.Net.AddRouter(&netsim.Router{
			Name:         p.Name + "/backbone/" + name,
			ISP:          p.Name,
			CO:           p.Name + "/backbone/" + name,
			Loc:          city.Point,
			ResponseProb: 0.97,
			IPID:         netsim.IPIDShared,
		})
		r.IPIDVelocity = 80
		for _, up := range s.AttachToTransitN(r, 2) {
			if p.BackboneRDNS != "" {
				name := fmt.Sprintf("0.ge-1-0-0.%s.%s", strings.ToLower(clli.CityCode(city)), p.BackboneRDNS)
				s.DNS.SetLive(up.Addr, name)
				s.DNS.SetSnapshot(up.Addr, name)
			}
		}
		exits[name] = r
		return r
	}
	// Wholesale providers (T-Mobile): one border router per (provider,
	// metro).
	providers := map[string]*netsim.Router{}
	providerFor := func(prov string, city geo.City) *netsim.Router {
		key := prov + "/" + city.Name
		if r, ok := providers[key]; ok {
			return r
		}
		r := s.Net.AddRouter(&netsim.Router{
			Name:         prov + "/" + city.Name,
			ISP:          prov,
			CO:           prov + "/" + clli.CityCode(city),
			Loc:          city.Point,
			ResponseProb: 0.97,
			IPID:         netsim.IPIDShared,
		})
		r.IPIDVelocity = 120
		s.AttachToTransitN(r, 1)
		name := fmt.Sprintf("ae1.cr1.%s.%s.example.net", strings.ToLower(clli.CityCode(city)), prov)
		for _, ifc := range r.Interfaces() {
			s.DNS.SetLive(ifc.Addr, name)
			s.DNS.SetSnapshot(ifc.Addr, name)
		}
		providers[key] = r
		return r
	}

	pgwSeq := 0
	v6 := func(base netip.Addr, fields ...ipalloc.Field) netip.Addr {
		return ipalloc.V6WithFields(base, fields...)
	}
	ifaceSeq := uint64(1)
	addIface := func(r *netsim.Router, base netip.Addr, fields ...ipalloc.Field) *netsim.Iface {
		ifaceSeq++
		fields = append(fields, ipalloc.Field{Start: 96, Len: 32, Value: ifaceSeq})
		ifc, err := s.Net.AddIface(r, v6(base, fields...))
		if err != nil {
			panic(err)
		}
		return ifc
	}

	for i := range p.Regions {
		spec := p.Regions[i]
		city := geo.MustByName(spec.City)
		reg := &MobileRegion{Spec: spec, City: city, Backbone: spec.Backbone, Provider: spec.Provider}
		c.Regions = append(c.Regions, reg)

		// The region's exit router.
		var exit *netsim.Router
		switch p.Arch {
		case ArchMultiBackbone:
			exit = providerFor(spec.Provider, city)
		case ArchMultiEdge:
			bbCity := city
			if spec.Backbone != "" {
				// Backbone CO sits at the first region of the group.
				for _, other := range p.Regions {
					if other.Name == spec.Backbone || other.Backbone == spec.Backbone {
						bbCity = geo.MustByName(other.City)
						break
					}
				}
			}
			exit = exitFor(spec.Backbone, bbCity)
		default:
			exit = exitFor(spec.Name, city)
		}

		// Core router inside the EdgeCO: carries the region bits in its
		// infrastructure address; silent middle hops model the packet
		// core's opacity.
		core := s.Net.AddRouter(&netsim.Router{
			Name:         fmt.Sprintf("%s/%s/core", p.Name, spec.Name),
			ISP:          p.Name,
			CO:           fmt.Sprintf("%s/%s", p.Name, spec.Name),
			Loc:          city.Point,
			ResponseProb: 0.96,
			DstPolicy:    netsim.DstClosed,
			IPID:         netsim.IPIDShared,
		})
		core.IPIDVelocity = 60
		coreUp := addIface(core, p.RouterBase,
			ipalloc.Field{Start: p.RouterField.Start, Len: p.RouterField.Len, Value: spec.RouterBits})
		exitDown := addIface(exit, p.RouterBase,
			ipalloc.Field{Start: p.RouterField.Start, Len: p.RouterField.Len, Value: spec.RouterBits})
		if _, err := s.Net.Connect(coreUp, exitDown, geo.PropagationDelay(city.Point, exit.Loc)); err != nil {
			panic(err)
		}
		// The backbone-side inbound interface is where the carrier's
		// backbone rDNS shows up in traceroutes (Verizon's alter.net),
		// and where wholesale providers name their customer ports
		// (T-Mobile's upstreams).
		switch {
		case p.Arch == ArchMultiBackbone:
			n := fmt.Sprintf("ae2.cr1.%s.%s.example.net", strings.ToLower(clli.CityCode(city)), spec.Provider)
			s.DNS.SetLive(exitDown.Addr, n)
			s.DNS.SetSnapshot(exitDown.Addr, n)
		case p.BackboneRDNS != "":
			n := fmt.Sprintf("0.xe-1-0-0.%s.%s", strings.ToLower(clli.CityCode(city)), p.BackboneRDNS)
			s.DNS.SetLive(exitDown.Addr, n)
			s.DNS.SetSnapshot(exitDown.Addr, n)
		}

		for k := 0; k < spec.PGWs; k++ {
			pgwSeq++
			pgw := &PGW{ID: k, UserValue: uint64(k), Region: reg}
			if p.GlobalPGWIDs {
				// Carrier-global identifiers are not assigned in
				// geographic order; scramble so neighboring sites do
				// not share high bits.
				pgw.UserValue = uint64((pgwSeq*37 + 11) % 251)
			}
			r := s.Net.AddRouter(&netsim.Router{
				Name:         fmt.Sprintf("%s/%s/pgw%d", p.Name, spec.Name, k),
				ISP:          p.Name,
				CO:           fmt.Sprintf("%s/%s", p.Name, spec.Name),
				Loc:          city.Point,
				ResponseProb: 0.98,
				DstPolicy:    netsim.DstClosed,
				ReplyAddr:    netsim.ReplyCanonical,
				IPID:         netsim.IPIDShared,
			})
			r.IPIDVelocity = 150
			// The PGW replies from an address inside the user space
			// carrying the region and PGW bits (Fig. 16 hop 1).
			userFace := addIface(r, p.UserBase,
				ipalloc.Field{Start: p.UserRegion.Start, Len: p.UserRegion.Len, Value: spec.UserBits},
				ipalloc.Field{Start: p.UserPGW.Start, Len: p.UserPGW.Len, Value: pgw.UserValue})
			r.Canonical = userFace.Addr
			pgw.Router = r
			reg.PGWs = append(reg.PGWs, pgw)

			// RAN gateway below the PGW: the phone's attachment point,
			// never visible in traceroute (so the PGW is hop 1).
			ran := s.Net.AddRouter(&netsim.Router{
				Name:         fmt.Sprintf("%s/%s/ran%d", p.Name, spec.Name, k),
				ISP:          p.Name,
				CO:           fmt.Sprintf("%s/%s", p.Name, spec.Name),
				Loc:          city.Point,
				ResponseProb: 0,
				DstPolicy:    netsim.DstClosed,
				IPID:         netsim.IPIDRandom,
			})
			ranUp := addIface(ran, p.RouterBase, ipalloc.Field{Start: 56, Len: 8, Value: 0xfe})
			pgwDown := addIface(r, p.RouterBase, ipalloc.Field{Start: 56, Len: 8, Value: 0xfd})
			if _, err := s.Net.Connect(ranUp, pgwDown, 200*time.Microsecond); err != nil {
				panic(err)
			}
			pgw.ranRouter = ran

			// Packet-core mid hops between PGW and the EdgeCO core.
			prev := r
			for h, mh := range p.MidHops {
				base := mh.Base
				if !base.IsValid() {
					base = p.RouterBase
				}
				resp := 0.96
				if mh.Silent {
					resp = -1 // forced silent (ResponseProb 0 would be defaulted)
				}
				mid := s.Net.AddRouter(&netsim.Router{
					Name:         fmt.Sprintf("%s/%s/pgw%d-core%d", p.Name, spec.Name, k, h),
					ISP:          p.Name,
					CO:           fmt.Sprintf("%s/%s", p.Name, spec.Name),
					Loc:          city.Point,
					ResponseProb: resp,
					DstPolicy:    netsim.DstClosed,
					IPID:         netsim.IPIDShared,
				})
				if mh.Silent {
					mid.ResponseProb = 0.000001
				}
				a1 := addIface(prev, base,
					ipalloc.Field{Start: p.RouterField.Start, Len: p.RouterField.Len, Value: spec.RouterBits},
					ipalloc.Field{Start: p.RouterPGW.Start, Len: p.RouterPGW.Len, Value: pgw.UserValue})
				a2 := addIface(mid, base,
					ipalloc.Field{Start: p.RouterField.Start, Len: p.RouterField.Len, Value: spec.RouterBits},
					ipalloc.Field{Start: p.RouterPGW.Start, Len: p.RouterPGW.Len, Value: pgw.UserValue})
				if _, err := s.Net.Connect(a1, a2, 80*time.Microsecond); err != nil {
					panic(err)
				}
				prev = mid
			}
			pgwUp2 := addIface(prev, p.RouterBase,
				ipalloc.Field{Start: p.RouterField.Start, Len: p.RouterField.Len, Value: spec.RouterBits},
				ipalloc.Field{Start: p.RouterPGW.Start, Len: p.RouterPGW.Len, Value: pgw.UserValue},
				ipalloc.Field{Start: 56, Len: 8, Value: 0xcc})
			coreDown := addIface(core, p.RouterBase,
				ipalloc.Field{Start: p.RouterField.Start, Len: p.RouterField.Len, Value: spec.RouterBits},
				ipalloc.Field{Start: p.RouterPGW.Start, Len: p.RouterPGW.Len, Value: pgw.UserValue},
				ipalloc.Field{Start: 56, Len: 8, Value: 0xcd})
			if _, err := s.Net.Connect(pgwUp2, coreDown, 100*time.Microsecond); err != nil {
				panic(err)
			}
		}

		// Speedtest host with EdgeCO rDNS (Verizon validation, §7.2.2).
		if p.SpeedtestRDNS {
			stAddr := v6(p.RouterBase,
				ipalloc.Field{Start: p.RouterField.Start, Len: p.RouterField.Len, Value: spec.RouterBits},
				ipalloc.Field{Start: 112, Len: 16, Value: 0x5157})
			st := &netsim.Host{
				Addr:           stAddr,
				Router:         core,
				ISP:            p.Name,
				Loc:            city.Point,
				AccessDelay:    100 * time.Microsecond,
				RespondsToPing: true,
			}
			if err := s.Net.AddHost(st); err != nil {
				panic(err)
			}
			code := strings.ToLower(city.State + clli.PlaceCode(city.Name)[:2])
			name := code + ".ost.myvzw.com"
			s.DNS.SetLive(stAddr, name)
			s.DNS.SetSnapshot(stAddr, name)
		}
	}
	return c
}

// NearestRegion returns the region whose EdgeCO is closest to p — the
// site a phone at p registers with.
func (c *MobileCarrier) NearestRegion(p geo.Point) *MobileRegion {
	return c.nearestRegions(p, 1)[0]
}

// nearestRegions returns the k regions closest to p, nearest first.
func (c *MobileCarrier) nearestRegions(p geo.Point, k int) []*MobileRegion {
	regs := append([]*MobileRegion(nil), c.Regions...)
	sortRegionsByDistance(regs, p)
	if k > len(regs) {
		k = len(regs)
	}
	return regs[:k]
}

func sortRegionsByDistance(regs []*MobileRegion, p geo.Point) {
	for i := 1; i < len(regs); i++ {
		for j := i; j > 0 && geo.DistanceKm(p, regs[j-1].City.Point) > geo.DistanceKm(p, regs[j].City.Point); j-- {
			regs[j-1], regs[j] = regs[j], regs[j-1]
		}
	}
}

// Attachment is one registration of a phone with the packet core.
type Attachment struct {
	Host *netsim.Host
	// UserAddr is the phone's address; its bits encode the region and
	// packet gateway per the carrier's plan.
	UserAddr netip.Addr
	PGW      *PGW
}

// Modem models a phone's registration behaviour: each airplane-mode
// cycle re-registers, possibly landing on a different packet gateway of
// the serving region (§7.1.1 required forcing this to see all PGWs).
type Modem struct {
	Carrier *MobileCarrier
	cycles  int
}

// NewModem returns a modem for this carrier.
func (c *MobileCarrier) NewModem() *Modem {
	return &Modem{Carrier: c}
}

// Attach registers at the given location and returns the attachment.
// The radio access network adds tens of milliseconds of access latency.
func (m *Modem) Attach(at geo.Point) Attachment {
	c := m.Carrier
	s := c.scenario
	p := c.Profile
	reg := c.NearestRegion(at)
	if k := p.AttachNearestK; k > 1 {
		regs := c.nearestRegions(at, k)
		reg = regs[m.cycles%len(regs)]
	} else if p.SwitchProb > 0 && s.rng.Float64() < p.SwitchProb {
		if regs := c.nearestRegions(at, 2); len(regs) == 2 && regs[1].Backbone == regs[0].Backbone {
			reg = regs[1]
		}
	}
	m.cycles++
	c.hostSeq++
	pgw := reg.PGWs[(m.cycles+int(s.rng.Int31n(2)))%len(reg.PGWs)]
	addr := ipalloc.V6WithFields(p.UserBase,
		ipalloc.Field{Start: p.UserRegion.Start, Len: p.UserRegion.Len, Value: reg.Spec.UserBits},
		ipalloc.Field{Start: p.UserPGW.Start, Len: p.UserPGW.Len, Value: pgw.UserValue},
		ipalloc.Field{Start: 64, Len: 32, Value: uint64(c.hostSeq)},
		ipalloc.Field{Start: 96, Len: 32, Value: uint64(s.rng.Int63()) & 0xffffffff})
	// Air latency to the serving site: local RAN plus backhaul distance.
	access := 15*time.Millisecond + geo.PropagationDelay(at, reg.City.Point)
	h := &netsim.Host{
		Addr:           addr,
		Router:         pgw.ranRouter,
		ISP:            p.Name,
		Loc:            at,
		AccessDelay:    access,
		RespondsToPing: false,
	}
	if err := s.Net.AddHost(h); err != nil {
		panic(err)
	}
	return Attachment{Host: h, UserAddr: addr, PGW: pgw}
}
