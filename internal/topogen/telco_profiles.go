package topogen

// ATTProfile returns an AT&T-like telco operator with 37 regional
// networks across the legacy SBC/Ameritech/BellSouth footprint. The
// sd2ca (San Diego) region is generated at full case-study detail: 42
// EdgeCOs including the distant Calexico and El Centro offices whose
// customers suffer double the regional average latency to the cloud
// (§6.3, Table 2).
func ATTProfile() TelcoProfile {
	return TelcoProfile{
		ISP:          "att",
		EdgeCOsPer24: 7,
		Regions:      attRegions,
	}
}

var attRegions = []TelcoRegionSpec{
	// California (Pacific Bell).
	{Tag: "sd2ca", Code: "sndgca", City: "San Diego", EdgeCOs: 42,
		FarTowns: []string{"Calexico", "El Centro"}},
	{Tag: "la2ca", Code: "lsanca", City: "Los Angeles", EdgeCOs: 14},
	{Tag: "bkfdca", Code: "bkfdca", City: "Bakersfield", EdgeCOs: 8},
	{Tag: "frsnca", Code: "frsnca", City: "Fresno", EdgeCOs: 9},
	{Tag: "scrmca", Code: "scrmca", City: "Sacramento", EdgeCOs: 11},
	{Tag: "sffca", Code: "snfcca", City: "San Francisco", EdgeCOs: 12},
	{Tag: "sj2ca", Code: "snjsca", City: "San Jose", EdgeCOs: 11},
	{Tag: "stknca", Code: "stktca", City: "Stockton", EdgeCOs: 7},
	// Nevada Bell.
	{Tag: "renonv", Code: "renonv", City: "Reno", EdgeCOs: 6},
	// Texas (Southwestern Bell).
	{Tag: "dlstx", Code: "dllstx", City: "Dallas", EdgeCOs: 14},
	{Tag: "hstntx", Code: "hstntx", City: "Houston", EdgeCOs: 14},
	{Tag: "sntotx", Code: "snantx", City: "San Antonio", EdgeCOs: 11},
	{Tag: "austx", Code: "austtx", City: "Austin", EdgeCOs: 10},
	{Tag: "elpstx", Code: "elpstx", City: "El Paso", EdgeCOs: 7},
	{Tag: "crpstx", Code: "crpctx", City: "Corpus Christi", EdgeCOs: 6},
	// Oklahoma / Kansas / Missouri / Arkansas.
	{Tag: "okcok", Code: "okcyok", City: "Oklahoma City", EdgeCOs: 8},
	{Tag: "tulsok", Code: "tulsok", City: "Tulsa", EdgeCOs: 7},
	{Tag: "wchtks", Code: "wchtks", City: "Wichita", EdgeCOs: 6},
	{Tag: "stlsmo", Code: "stlsmo", City: "Saint Louis", EdgeCOs: 11},
	{Tag: "kc2mo", Code: "knscmo", City: "Kansas City", EdgeCOs: 9},
	{Tag: "sgfdmo", Code: "spfdmo", City: "Springfield, MO", EdgeCOs: 6},
	{Tag: "ltrkar", Code: "ltrkar", City: "Little Rock", EdgeCOs: 6},
	// Ameritech (IL, IN, OH, MI, WI).
	{Tag: "chcgil", Code: "chcgil", City: "Chicago", EdgeCOs: 15},
	{Tag: "spfdil", Code: "spfdil", City: "Springfield, IL", EdgeCOs: 5},
	{Tag: "ipls2in", Code: "iplsin", City: "Indianapolis", EdgeCOs: 10},
	{Tag: "clmboh", Code: "clmboh", City: "Columbus", EdgeCOs: 10},
	{Tag: "clevoh", Code: "clevoh", City: "Cleveland", EdgeCOs: 10},
	{Tag: "dtrtmi", Code: "dtrtmi", City: "Detroit", EdgeCOs: 12},
	{Tag: "grpdmi", Code: "grrpmi", City: "Grand Rapids", EdgeCOs: 6},
	{Tag: "mlwkwi", Code: "milwwi", City: "Milwaukee", EdgeCOs: 9},
	{Tag: "mdsnwi", Code: "madswi", City: "Madison", EdgeCOs: 5},
	// BellSouth.
	{Tag: "miamfl", Code: "miamfl", City: "Miami", EdgeCOs: 12},
	{Tag: "orldfl", Code: "orldfl", City: "Orlando", EdgeCOs: 9},
	{Tag: "jcvlfl", Code: "jcvlfl", City: "Jacksonville", EdgeCOs: 7},
	{Tag: "atlnga", Code: "atlnga", City: "Atlanta", EdgeCOs: 13},
	{Tag: "nsvltn", Code: "nsvltn", City: "Nashville", EdgeCOs: 9},
	{Tag: "mmphtn", Code: "mmphtn", City: "Memphis", EdgeCOs: 8},
}
