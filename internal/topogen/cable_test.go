package topogen

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/hostnames"
	"repro/internal/netsim"
)

// buildCableScenario is shared by several tests; building both operators
// takes a moment, so cache one per seed.
var cachedScenario *Scenario
var cachedComcast, cachedCharter *ISP

func cableScenario(t *testing.T) (*Scenario, *ISP, *ISP) {
	t.Helper()
	if cachedScenario == nil {
		s := NewScenario(1)
		cachedComcast = s.BuildCable(ComcastProfile())
		cachedCharter = s.BuildCable(CharterProfile())
		cachedScenario = s
	}
	return cachedScenario, cachedComcast, cachedCharter
}

func TestCableRegionInventory(t *testing.T) {
	_, comcast, charter := cableScenario(t)
	if got := len(comcast.Regions); got != 28 {
		t.Errorf("comcast regions = %d, want 28", got)
	}
	if got := len(charter.Regions); got != 6 {
		t.Errorf("charter regions = %d, want 6", got)
	}
	// Table 1 ground truth: 5/11/12 vs 0/0/6.
	count := func(isp *ISP, layers int) int {
		n := 0
		for _, r := range isp.Regions {
			if r.AggLayers == layers {
				n++
			}
		}
		return n
	}
	for _, tt := range []struct {
		isp    *ISP
		layers int
		want   int
	}{
		{comcast, 1, 5}, {comcast, 2, 11}, {comcast, 3, 12},
		{charter, 1, 0}, {charter, 2, 0}, {charter, 3, 6},
	} {
		if got := count(tt.isp, tt.layers); got != tt.want {
			t.Errorf("%s regions with %d agg layers = %d, want %d", tt.isp.Name, tt.layers, got, tt.want)
		}
	}
}

func TestCharterRegionsLarger(t *testing.T) {
	_, comcast, charter := cableScenario(t)
	avg := func(isp *ISP) float64 {
		total := 0
		for _, r := range isp.Regions {
			total += len(r.COs)
		}
		return float64(total) / float64(len(isp.Regions))
	}
	if ac, ah := avg(comcast), avg(charter); ah < 2.5*ac {
		t.Errorf("charter regions should dwarf comcast's: comcast avg %.1f COs, charter %.1f", ac, ah)
	}
}

func TestEveryEdgeCOHasUpstreamAndSubscribers(t *testing.T) {
	s, comcast, charter := cableScenario(t)
	for _, isp := range []*ISP{comcast, charter} {
		for _, reg := range isp.Regions {
			if len(reg.SubscriberPrefixes) == 0 {
				t.Errorf("%s/%s has no subscriber prefixes", isp.Name, reg.Name)
			}
			for _, co := range reg.COs {
				if co.Role != EdgeCO {
					continue
				}
				if len(co.Upstream) == 0 {
					t.Errorf("EdgeCO %s has no upstream", co.ID)
				}
				if len(co.Routers) == 0 {
					t.Errorf("EdgeCO %s has no routers", co.ID)
				}
				for _, up := range co.Upstream {
					if _, ok := reg.COs[up]; !ok {
						t.Errorf("EdgeCO %s upstream %s not in region", co.ID, up)
					}
				}
			}
		}
	}
	_ = s
}

func TestBackboneEntries(t *testing.T) {
	_, comcast, charter := cableScenario(t)
	// hartford reaches the backbone only via boston.
	h := comcast.Regions["hartford"]
	if len(h.BackboneEntries) != 0 || len(h.EntryRegions) != 1 || h.EntryRegions[0] != "boston" {
		t.Errorf("hartford entries = %v via %v", h.BackboneEntries, h.EntryRegions)
	}
	// centralca has both.
	cc := comcast.Regions["centralca"]
	if len(cc.BackboneEntries) != 2 || len(cc.EntryRegions) != 1 {
		t.Errorf("centralca entries = %v via %v", cc.BackboneEntries, cc.EntryRegions)
	}
	// All charter regions have two backbone COs.
	for name, r := range charter.Regions {
		if len(r.BackboneEntries) != 2 {
			t.Errorf("charter/%s backbone entries = %d, want 2", name, len(r.BackboneEntries))
		}
	}
	// Total distinct (region, backboneCO) entry pairs for Comcast should
	// be in the neighborhood of the paper's 57 + 3 missed.
	total := 0
	for _, r := range comcast.Regions {
		total += len(r.BackboneEntries)
	}
	if total < 45 || total > 65 {
		t.Errorf("comcast backbone entry pairs = %d, want ~53", total)
	}
}

func TestCableHostnamesMatchPaperConventions(t *testing.T) {
	s, comcast, charter := cableScenario(t)
	comcastRe := regexp.MustCompile(`^(ae|po|be)-[\d-]+-(cr|ar|cbr|rur)\d+\.[a-z0-9.]+\.comcast\.net$`)
	charterRe := regexp.MustCompile(`^(agg\d+\.[a-z]{8}\d{2}[rmh]\.[a-z]+\.rr\.com|bu-ether\d+\.[a-z]{8}0yw-bcr\d{2}\.tbone\.rr\.com)$`)
	check := func(isp *ISP, re *regexp.Regexp) {
		seen, bad := 0, 0
		for _, reg := range isp.Regions {
			for _, co := range reg.COs {
				for _, r := range co.Routers {
					for _, ifc := range r.Interfaces() {
						name, ok := s.DNS.Dig(ifc.Addr)
						if !ok {
							continue
						}
						seen++
						if !re.MatchString(name) {
							bad++
							if bad < 5 {
								t.Errorf("%s hostname %q does not match convention", isp.Name, name)
							}
						}
					}
				}
			}
		}
		if seen == 0 {
			t.Errorf("%s: no named interfaces", isp.Name)
		}
	}
	check(comcast, comcastRe)
	check(charter, charterRe)
}

func TestStaleAndMissingNamesExist(t *testing.T) {
	s, comcast, _ := cableScenario(t)
	missing, staleSnap, named := 0, 0, 0
	for _, reg := range comcast.Regions {
		for _, co := range reg.COs {
			for _, r := range co.Routers {
				for _, ifc := range r.Interfaces() {
					live, okL := s.DNS.Dig(ifc.Addr)
					snap, okS := s.DNS.SnapshotLookup(ifc.Addr)
					switch {
					case !okL && !okS:
						missing++
					case okL && okS && live != snap:
						staleSnap++
					default:
						named++
					}
				}
			}
		}
	}
	if missing == 0 {
		t.Error("no unnamed interfaces; the missing-rDNS noise process is dead")
	}
	if staleSnap == 0 {
		t.Error("no snapshot-stale interfaces; the staleness noise process is dead")
	}
	frac := float64(missing) / float64(missing+staleSnap+named)
	if frac < 0.03 || frac > 0.2 {
		t.Errorf("missing-name fraction = %.3f, want ~0.09", frac)
	}
}

func TestTraceFromTransitVPCrossesHierarchy(t *testing.T) {
	s, comcast, _ := cableScenario(t)
	vps := []*netsim.Host{
		s.AddTransitVP("Kansas City"),
		s.AddTransitVP("Seattle"),
		s.AddTransitVP("San Francisco"),
	}
	reg := comcast.Regions["bverton"]
	// Probe several subscriber prefixes from several VPs; across paths
	// all three hierarchy tiers must appear by name (individual
	// interfaces may be unnamed by the noise process).
	var sawBackbone, sawAgg, sawEdge bool
	for i, pfx := range reg.SubscriberPrefixes {
		if i >= 8 {
			break
		}
		dst := pfx.Addr().Next()
		for _, vp := range vps {
			for ttl := uint8(1); ttl <= 24; ttl++ {
				r := s.Net.Probe(s.Epoch(), netsim.ProbeSpec{Src: vp.Addr, Dst: dst, TTL: ttl, FlowID: uint16(i)})
				if r.Type != netsim.TTLExceeded {
					continue
				}
				name, _ := s.DNS.Dig(r.From)
				switch {
				case strings.Contains(name, "ibone"):
					sawBackbone = true
				case strings.Contains(name, "-ar"):
					sawAgg = true
				case strings.Contains(name, "cbr") || strings.Contains(name, "rur"):
					sawEdge = true
				}
			}
		}
	}
	if !sawBackbone || !sawAgg || !sawEdge {
		t.Errorf("paths into bverton missing tiers: backbone=%v agg=%v edge=%v", sawBackbone, sawAgg, sawEdge)
	}
}

func TestCharterMPLSHidesMiddleTier(t *testing.T) {
	s, _, charter := cableScenario(t)
	reg := charter.Regions["maine"]
	vp := s.AddTransitVP("Boston")
	// Trace to several subscriber prefixes; tier-2 agg hops must never
	// appear (LSPs from the top AggCOs hide them).
	tier2 := map[string]bool{}
	for _, co := range reg.COs {
		if co.Role == AggCO && co.Tier == 2 {
			tier2[co.ID] = true
		}
	}
	if len(tier2) == 0 {
		t.Fatal("maine has no tier-2 AggCOs")
	}
	hits := 0
	for i, pfx := range reg.SubscriberPrefixes {
		if i >= 20 {
			break
		}
		dst := pfx.Addr().Next()
		for ttl := uint8(1); ttl <= 24; ttl++ {
			r := s.Net.Probe(s.Epoch(), netsim.ProbeSpec{Src: vp.Addr, Dst: dst, TTL: ttl, FlowID: uint16(i)})
			if r.Type != netsim.TTLExceeded {
				continue
			}
			if ifc, ok := s.Net.IfaceByAddr(r.From); ok && tier2[ifc.Router.CO] {
				hits++
			}
		}
	}
	if hits != 0 {
		t.Errorf("tier-2 AggCO routers appeared %d times despite MPLS", hits)
	}
}

func TestScenarioDeterminism(t *testing.T) {
	s1 := NewScenario(99)
	s2 := NewScenario(99)
	i1 := s1.BuildCable(CharterProfile())
	i2 := s2.BuildCable(CharterProfile())
	r1 := i1.Regions["socal"]
	r2 := i2.Regions["socal"]
	if len(r1.COs) != len(r2.COs) {
		t.Fatalf("same seed, different CO counts: %d vs %d", len(r1.COs), len(r2.COs))
	}
	for id := range r1.COs {
		if _, ok := r2.COs[id]; !ok {
			t.Errorf("CO %s missing from second build", id)
		}
	}
}

func TestCloudVMsReachCableEdges(t *testing.T) {
	s, comcast, _ := cableScenario(t)
	vms := s.CloudVMs("gcloud")
	if len(vms) < 5 {
		t.Fatalf("gcloud VMs = %d", len(vms))
	}
	reg := comcast.Regions["boston"]
	edge := reg.COsByRole(EdgeCO)[0]
	target := edge.Routers[0].Interfaces()[0].Addr
	var ashburn *CloudVM
	for i := range vms {
		if vms[i].Region == "us-east4" {
			ashburn = &vms[i]
		}
	}
	if ashburn == nil {
		t.Fatal("no us-east4 VM")
	}
	r := s.Net.Probe(s.Epoch(), netsim.ProbeSpec{Src: ashburn.Host.Addr, Dst: target, TTL: 32})
	if r.Type != netsim.EchoReply {
		t.Fatalf("cloud ping to boston EdgeCO iface = %v", r.Type)
	}
	// Ashburn to Boston-area: ~630km great circle => at least 6ms RTT
	// with inflation, and well under 30ms.
	if r.RTT < 6*time.Millisecond || r.RTT > 30*time.Millisecond {
		t.Errorf("Ashburn->Boston edge RTT = %v, want 6-30ms", r.RTT)
	}
}

// TestHostnameRoundTrip feeds every generated live interface name back
// through the inference-side parser: parsed names must carry the
// generating region's tag (canonical names) or another CO's (stale),
// and the stale fraction must stay within the profile's noise budget.
func TestHostnameRoundTrip(t *testing.T) {
	s, comcast, charter := cableScenario(t)
	for _, isp := range []*ISP{comcast, charter} {
		parsed, stale, total := 0, 0, 0
		for _, reg := range isp.Regions {
			for _, co := range reg.COs {
				for _, r := range co.Routers {
					for _, ifc := range r.Interfaces() {
						name, ok := s.DNS.Dig(ifc.Addr)
						if !ok {
							continue
						}
						total++
						info, ok := hostnames.Parse(name)
						if !ok {
							t.Fatalf("%s: generated name %q does not parse", isp.Name, name)
						}
						if info.ISP != isp.Name {
							t.Fatalf("%s: name %q parsed to operator %q", isp.Name, name, info.ISP)
						}
						parsed++
						if info.Backbone || info.Region != reg.Name || info.CO != co.Tag {
							stale++
						}
					}
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s: no named interfaces", isp.Name)
		}
		frac := float64(stale) / float64(total)
		if frac > 0.12 {
			t.Errorf("%s: stale live-name fraction %.3f exceeds the noise budget", isp.Name, frac)
		}
		if stale == 0 {
			t.Errorf("%s: no stale names at all; the noise process is dead", isp.Name)
		}
	}
}

// TestGeneratorDeterminismTelcoMobile extends the determinism guarantee
// to the telco and mobile generators.
func TestGeneratorDeterminismTelcoMobile(t *testing.T) {
	build := func() (int, int, string) {
		s := NewScenario(123)
		tel := s.BuildTelco(ATTProfile())
		vz := s.BuildMobileCarrier(VerizonProfile())
		nR := len(s.Net.Routers())
		dslams := len(tel.DSLAMs["sd2ca"])
		firstPGW := vz.Regions[0].PGWs[0].Router.Canonical.String()
		return nR, dslams, firstPGW
	}
	r1, d1, p1 := build()
	r2, d2, p2 := build()
	if r1 != r2 || d1 != d2 || p1 != p2 {
		t.Errorf("same seed diverged: (%d,%d,%s) vs (%d,%d,%s)", r1, d1, p1, r2, d2, p2)
	}
}

func TestTransitBackboneConnected(t *testing.T) {
	s := NewScenario(5)
	// Every metro transit PoP must reach every other (the long-haul
	// substrate is one connected component).
	var pops []*netsim.Router
	for _, r := range s.Net.Routers() {
		if r.ISP == "transit" {
			pops = append(pops, r)
		}
	}
	if len(pops) < 20 {
		t.Fatalf("transit PoPs = %d", len(pops))
	}
	for _, p := range pops[1:] {
		if !s.Net.Reachable(pops[0], p) {
			t.Errorf("transit PoP %s unreachable from %s", p.Name, pops[0].Name)
		}
	}
}

func TestCloudInventory(t *testing.T) {
	s := NewScenario(5)
	providers := map[string]int{}
	for _, c := range s.Clouds {
		providers[c.Provider]++
		if !c.Host.Addr.IsValid() {
			t.Errorf("%s/%s VM has no address", c.Provider, c.Region)
		}
	}
	if providers["aws"] < 4 || providers["azure"] < 5 || providers["gcloud"] < 6 {
		t.Errorf("cloud regions per provider = %v", providers)
	}
	if got := len(s.CloudVMs("aws")); got != providers["aws"] {
		t.Errorf("CloudVMs(aws) = %d", got)
	}
	if got := len(s.CloudVMs("")); got != len(s.Clouds) {
		t.Errorf("CloudVMs(all) = %d", got)
	}
}
