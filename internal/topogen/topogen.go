// Package topogen synthesizes ground-truth Internet scenarios with the
// architectural features the paper measures: cable regional access
// networks (Comcast- and Charter-like), a telco access network
// (AT&T-like), mobile carriers (AT&T/Verizon/T-Mobile-like), a shared
// long-haul transit backbone, and public cloud providers.
//
// A Scenario couples a netsim.Network with reverse DNS content and with
// ground-truth inventories (regions, COs, CO adjacencies) that only the
// scoring code may consult. All randomness is drawn from a seeded
// math/rand source, so a seed fully determines a scenario.
package topogen

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
	"time"

	"repro/internal/clli"
	"repro/internal/dnsdb"
	"repro/internal/geo"
	"repro/internal/ipalloc"
	"repro/internal/netsim"
)

// CORole classifies a central office in the ground truth.
type CORole uint8

const (
	// EdgeCO aggregates last-mile links.
	EdgeCO CORole = iota
	// AggCO aggregates EdgeCOs (any tier).
	AggCO
	// BackboneCO houses the routers that connect a regional network to
	// the operator's backbone.
	BackboneCO
)

func (r CORole) String() string {
	switch r {
	case EdgeCO:
		return "edge"
	case AggCO:
		return "agg"
	case BackboneCO:
		return "backbone"
	}
	return "unknown"
}

// CO is a ground-truth central office.
type CO struct {
	// ID is globally unique, e.g. "comcast/boston/BSTNMA01".
	ID string
	// Tag is the identifier rDNS would expose for this CO (a CLLI code
	// fragment for Charter, a location name for Comcast); it is what a
	// perfect inference should recover.
	Tag    string
	Role   CORole
	Tier   int // 1 = top aggregation layer, 2 = below it, 0 for edge/backbone
	City   geo.City
	Loc    geo.Point
	Region string

	Routers []*netsim.Router
	// Upstream lists the ground-truth CO IDs this CO sends aggregated
	// traffic toward (its parents in the hierarchy).
	Upstream []string
}

// Region is one regional access network in the ground truth.
type Region struct {
	Name string
	ISP  string
	COs  map[string]*CO
	// BackboneEntries are the BackboneCO IDs with links into the region.
	BackboneEntries []string
	// EntryRegions lists other regions that feed this one (the paper's
	// Connecticut-through-Massachusetts case).
	EntryRegions []string
	// AggLayers is the ground-truth aggregation depth: 1 for a single
	// AggCO layer, 2 for a redundant pair, 3 for multi-level (Fig. 8).
	AggLayers int
	// SubscriberPrefixes are the last-mile /24s served by the region's
	// EdgeCOs.
	SubscriberPrefixes []netip.Prefix
}

// COsByRole returns the region's COs with the given role, in stable
// (ID-sorted) order.
func (r *Region) COsByRole(role CORole) []*CO {
	var out []*CO
	for _, co := range r.COs {
		if co.Role == role {
			out = append(out, co)
		}
	}
	sortCOs(out)
	return out
}

func sortCOs(cos []*CO) {
	for i := 1; i < len(cos); i++ {
		for j := i; j > 0 && cos[j-1].ID > cos[j].ID; j-- {
			cos[j-1], cos[j] = cos[j], cos[j-1]
		}
	}
}

// ISP is a ground-truth operator.
type ISP struct {
	Name    string
	Regions map[string]*Region
	// BackbonePoPs are the operator's backbone COs (outside regions).
	BackbonePoPs map[string]*CO
	// Announced lists the operator's publicly routed prefixes; campaigns
	// may consult this the way the paper consults BGP data.
	Announced []netip.Prefix
}

// CloudVM is a vantage point in a public cloud region.
type CloudVM struct {
	Provider string // "aws", "azure", "gcloud"
	Region   string // e.g. "us-east-1"
	City     geo.City
	Host     *netsim.Host
}

// Scenario is a complete simulated internetwork plus its ground truth.
type Scenario struct {
	Net  *netsim.Network
	DNS  *dnsdb.DB
	ISPs map[string]*ISP
	// Clouds holds one VM per provider cloud region.
	Clouds []CloudVM
	// CLLI registers every city used anywhere in the scenario, standing
	// in for the public geolocation databases the paper consults.
	CLLI *clli.Registry

	rng        *rand.Rand
	transit    map[string]*netsim.Router // transit PoP router by city name
	transitIPs *ipalloc.Pool
	vpPool     *ipalloc.Pool
	epoch      time.Time
}

// NewScenario creates an empty scenario with a shared long-haul transit
// backbone across all metro cities and the public cloud providers
// attached to it.
func NewScenario(seed int64) *Scenario {
	s := &Scenario{
		Net:        netsim.New(uint64(seed)),
		DNS:        dnsdb.New(),
		ISPs:       map[string]*ISP{},
		CLLI:       clli.NewRegistry(geo.All()),
		rng:        rand.New(rand.NewSource(seed)),
		transit:    map[string]*netsim.Router{},
		transitIPs: ipalloc.NewPool(netip.MustParsePrefix("144.232.0.0/14")),
		epoch:      time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC),
	}
	s.buildTransit()
	s.buildClouds()
	return s
}

// Epoch is the virtual-time origin for campaigns over this scenario.
func (s *Scenario) Epoch() time.Time { return s.epoch }

// Rand exposes the scenario's seeded random source to sub-generators.
func (s *Scenario) Rand() *rand.Rand { return s.rng }

// buildTransit creates one transit PoP per metro city and meshes each
// with its three nearest peers, guaranteeing a connected national
// backbone with realistic geographic latency.
func (s *Scenario) buildTransit() {
	var metros []geo.City
	for _, c := range geo.All() {
		if c.Metro {
			metros = append(metros, c)
		}
	}
	for _, c := range metros {
		r := s.Net.AddRouter(&netsim.Router{
			Name: "transit/" + c.Name,
			ISP:  "transit",
			CO:   "transit/" + clli.CityCode(c),
			Loc:  c.Point,
			IPID: netsim.IPIDShared,
		})
		r.IPIDVelocity = 50 + s.rng.Float64()*200
		s.transit[c.Name] = r
	}
	// Connect each metro to its 3 nearest; union of such edges on US
	// metros is connected.
	for i, a := range metros {
		type cand struct {
			j int
			d float64
		}
		var cands []cand
		for j, b := range metros {
			if i == j {
				continue
			}
			cands = append(cands, cand{j, geo.DistanceKm(a.Point, b.Point)})
		}
		for x := 1; x < len(cands); x++ {
			for y := x; y > 0 && cands[y-1].d > cands[y].d; y-- {
				cands[y-1], cands[y] = cands[y], cands[y-1]
			}
		}
		for k := 0; k < 3 && k < len(cands); k++ {
			b := metros[cands[k].j]
			s.linkTransit(a, b)
		}
	}
	// A few express long-haul links so coast-to-coast paths are direct,
	// as real backbones are.
	express := [][2]string{
		{"Los Angeles", "Dallas"}, {"Dallas", "Atlanta"}, {"Atlanta", "Washington"},
		{"Washington", "New York"}, {"New York", "Chicago"}, {"Chicago", "Denver"},
		{"Denver", "Los Angeles"}, {"Seattle", "Chicago"}, {"San Francisco", "Chicago"},
		{"Los Angeles", "Miami"}, {"Kansas City", "Denver"}, {"Seattle", "San Francisco"},
	}
	for _, e := range express {
		s.linkTransit(geo.MustByName(e[0]), geo.MustByName(e[1]))
	}
}

// linkTransit links two transit PoPs if not already linked.
func (s *Scenario) linkTransit(a, b geo.City) {
	ra, rb := s.transit[a.Name], s.transit[b.Name]
	if ra == nil || rb == nil || ra == rb {
		return
	}
	for _, ifc := range ra.Interfaces() {
		if ifc.Link != nil && ifc.Link.Other(ifc).Router == rb {
			return
		}
	}
	p2p, err := s.transitIPs.NextP2P(30)
	if err != nil {
		panic(err)
	}
	delay := geo.PropagationDelay(a.Point, b.Point)
	if _, err := s.Net.ConnectRouters(ra, rb, p2p.A, p2p.B, delay); err != nil {
		panic(err)
	}
	s.nameTransitIface(ra, p2p.A, a)
	s.nameTransitIface(rb, p2p.B, b)
}

// nameTransitIface writes generic long-haul carrier rDNS for a transit
// interface; these names carry no access-network CO information.
func (s *Scenario) nameTransitIface(r *netsim.Router, addr netip.Addr, city geo.City) {
	name := fmt.Sprintf("xe-%d.cr.%s.transit.example.net",
		len(r.Interfaces()), strings.ToLower(clli.CityCode(city)))
	s.DNS.SetLive(addr, name)
	s.DNS.SetSnapshot(addr, name)
}

// TransitPoP returns the transit router nearest to p.
func (s *Scenario) TransitPoP(p geo.Point) *netsim.Router {
	return s.transitPoPs(p, 1)[0]
}

// transitPoPs returns the k transit routers nearest to p, nearest first.
func (s *Scenario) transitPoPs(p geo.Point, k int) []*netsim.Router {
	type cand struct {
		r *netsim.Router
		d float64
	}
	cands := make([]cand, 0, len(s.transit))
	for _, r := range s.transit {
		cands = append(cands, cand{r, geo.DistanceKm(p, r.Loc)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].r.Name < cands[j].r.Name
	})
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]*netsim.Router, k)
	for i := range out {
		out[i] = cands[i].r
	}
	return out
}

// AttachToTransit links r to the transit PoP nearest to its location and
// returns the PoP and the interface created on r.
func (s *Scenario) AttachToTransit(r *netsim.Router) (*netsim.Router, *netsim.Iface) {
	ifaces := s.AttachToTransitN(r, 1)
	pop := ifaces[0].Link.Other(ifaces[0]).Router
	return pop, ifaces[0]
}

// AttachToTransitN links r to its n nearest transit PoPs (multihoming;
// ISP backbone PoPs peer with several carriers at an exchange) and
// returns the interfaces created on r, nearest PoP first.
func (s *Scenario) AttachToTransitN(r *netsim.Router, n int) []*netsim.Iface {
	var out []*netsim.Iface
	for _, pop := range s.transitPoPs(r.Loc, n) {
		p2p, err := s.transitIPs.NextP2P(30)
		if err != nil {
			panic(err)
		}
		popIface, err := s.Net.AddIface(pop, p2p.A)
		if err != nil {
			panic(err)
		}
		rIface, err := s.Net.AddIface(r, p2p.B)
		if err != nil {
			panic(err)
		}
		if _, err := s.Net.Connect(popIface, rIface, geo.PropagationDelay(pop.Loc, r.Loc)); err != nil {
			panic(err)
		}
		s.nameTransitIface(pop, p2p.A, geo.Nearest(pop.Loc))
		out = append(out, rIface)
	}
	return out
}

// cloudSites enumerates the U.S. cloud regions the paper probes from
// (every U.S. region of AWS, Azure, and Google Cloud, §5.5).
var cloudSites = []struct {
	provider, region, city string
}{
	{"aws", "us-east-1", "Ashburn"},
	{"aws", "us-east-2", "Columbus"},
	{"aws", "us-west-1", "San Francisco"},
	{"aws", "us-west-2", "Portland"},
	{"azure", "eastus", "Ashburn"},
	{"azure", "eastus2", "Richmond"},
	{"azure", "centralus", "Des Moines"},
	{"azure", "southcentralus", "San Antonio"},
	{"azure", "westus", "San Jose"},
	{"azure", "westus2", "Seattle"},
	{"gcloud", "us-east4", "Ashburn"},
	{"gcloud", "us-east1", "Charleston, SC"},
	{"gcloud", "us-central1", "Omaha"},
	{"gcloud", "us-west1", "Portland"},
	{"gcloud", "us-west2", "Los Angeles"},
	{"gcloud", "us-west3", "Salt Lake City"},
	{"gcloud", "us-west4", "Las Vegas"},
	{"gcloud", "us-south1", "Dallas"},
}

func (s *Scenario) buildClouds() {
	pool := ipalloc.NewPool(netip.MustParsePrefix("34.64.0.0/12"))
	for _, site := range cloudSites {
		city := geo.MustByName(site.city)
		border := s.Net.AddRouter(&netsim.Router{
			Name: site.provider + "/" + site.region,
			ISP:  site.provider,
			CO:   site.provider + "/" + site.region,
			Loc:  city.Point,
			IPID: netsim.IPIDShared,
		})
		s.AttachToTransit(border)
		addr, err := pool.NextHost()
		if err != nil {
			panic(err)
		}
		vm := &netsim.Host{
			Addr:           addr,
			Router:         border,
			ISP:            site.provider,
			Loc:            city.Point,
			AccessDelay:    100 * time.Microsecond, // datacenter fabric
			RespondsToPing: true,
		}
		if err := s.Net.AddHost(vm); err != nil {
			panic(err)
		}
		s.Clouds = append(s.Clouds, CloudVM{
			Provider: site.provider,
			Region:   site.region,
			City:     city,
			Host:     vm,
		})
	}
}

// CloudVMs returns the VMs of one provider, or all VMs when provider is
// empty.
func (s *Scenario) CloudVMs(provider string) []CloudVM {
	var out []CloudVM
	for _, c := range s.Clouds {
		if provider == "" || c.Provider == provider {
			out = append(out, c)
		}
	}
	return out
}

// ispByName fetches or creates the ground-truth ISP record.
func (s *Scenario) ispByName(name string) *ISP {
	isp, ok := s.ISPs[name]
	if !ok {
		isp = &ISP{Name: name, Regions: map[string]*Region{}, BackbonePoPs: map[string]*CO{}}
		s.ISPs[name] = isp
	}
	return isp
}

// scatterTown places a synthetic town near an anchor city: direction and
// distance are drawn from the scenario RNG, and the town is registered
// with the CLLI registry so inference can geolocate it.
func (s *Scenario) scatterTown(name string, anchor geo.City, minKm, maxKm float64) geo.City {
	d := minKm + s.rng.Float64()*(maxKm-minKm)
	theta := s.rng.Float64() * 2 * 3.141592653589793
	dLat := d / 111.0
	dLon := d / 88.0 // ~111*cos(38°)
	town := geo.City{
		Name:  name,
		State: anchor.State,
		Point: geo.Point{
			Lat: anchor.Point.Lat + dLat*math.Sin(theta),
			Lon: anchor.Point.Lon + dLon*math.Cos(theta),
		},
	}
	s.CLLI.Add(town)
	return town
}

// coID builds a unique CO identifier.
func coID(isp, region, tag string) string {
	return fmt.Sprintf("%s/%s/%s", isp, region, tag)
}
