package topogen

import "strconv"

// Scale raises a generated operator's footprint by whole-number knobs
// without touching the paper-calibrated per-region parameters. The
// default (zero) Scale reproduces the published topology exactly —
// profiles scaled with a zero Scale are returned unchanged, so golden
// digests pinned at paper size are unaffected by the scaling machinery.
type Scale struct {
	// Regions multiplies the operator's region list: the original
	// regions are kept verbatim (and generated first, so their RNG
	// draws match an unscaled run) and every replica set is appended
	// after them with a numeric suffix on the region tag ("bverton2",
	// "socal3", ...). Suffixes stay alphanumeric because the rDNS
	// region grammars only admit [a-z0-9]+ tags. Values <= 1 mean "no
	// replication".
	Regions int
	// Subscribers is the minimum number of allocated subscriber
	// addresses per operator. When region replication alone does not
	// reach it, every EdgeCO is assigned enough subscriber /24s (each
	// worth 256 allocated addresses) to cover the floor. Values <= 0
	// mean "one /24 per EdgeCO", the paper-size default.
	Subscribers int
}

// IsZero reports whether sc leaves the topology at paper size.
func (sc Scale) IsZero() bool { return sc.Regions <= 1 && sc.Subscribers <= 0 }

// Scaled returns a copy of the profile enlarged per sc. A zero sc
// returns p unchanged (same Regions slice), keeping the unscaled path
// byte-identical to the pre-scaling generator.
func (p CableProfile) Scaled(sc Scale) CableProfile {
	if sc.IsZero() {
		return p
	}
	out := p
	out.MinSubscribers = sc.Subscribers
	if sc.Regions > 1 {
		regs := make([]CableRegionSpec, 0, len(p.Regions)*sc.Regions)
		regs = append(regs, p.Regions...)
		for rep := 2; rep <= sc.Regions; rep++ {
			suffix := strconv.Itoa(rep)
			for _, r := range p.Regions {
				r.Name += suffix
				if r.ViaRegion != "" {
					// Replicated regions wire through their own
					// replica of the via region, preserving the Fig. 9
					// entry pattern inside every copy.
					r.ViaRegion += suffix
				}
				regs = append(regs, r)
			}
		}
		out.Regions = regs
	}
	return out
}
