package topogen

import (
	"fmt"
)

// nameIfaces runs after all of an operator's COs exist. For each queued
// interface it formats the canonical hostname and then injects the noise
// processes the paper's heuristics must overcome:
//
//   - unnamed: no PTR record in either the live zone or the snapshot
//     (drives the Appendix B.3 missing-edge repair);
//   - stale-both: an outdated name, for a different CO, in both sources
//     ("uncorrected stale rDNS", which creates the false EdgeCO-EdgeCO
//     and cross-region edges of Appendix B.2/B.3);
//   - stale-snapshot: the scan dataset lags the live zone (drives the
//     paper's dig-over-Rapid7 priority).
func (b *cableBuilder) nameIfaces() {
	for _, j := range b.jobs {
		canonical := b.formatName(j, j.co)
		r := b.s.rng.Float64()
		switch {
		case r < b.p.UnnamedProb:
			// no records
		case r < b.p.UnnamedProb+b.p.StaleBothProb:
			stale := b.formatName(j, b.staleCO(j.co))
			b.s.DNS.SetLive(j.iface.Addr, stale)
			b.s.DNS.SetSnapshot(j.iface.Addr, stale)
		case r < b.p.UnnamedProb+b.p.StaleBothProb+b.p.StaleSnapProb:
			b.s.DNS.SetLive(j.iface.Addr, canonical)
			b.s.DNS.SetSnapshot(j.iface.Addr, b.formatName(j, b.staleCO(j.co)))
		default:
			b.s.DNS.SetLive(j.iface.Addr, canonical)
			b.s.DNS.SetSnapshot(j.iface.Addr, canonical)
		}
	}
}

// staleCO picks the CO an outdated name refers to: usually another CO in
// the same region (equipment moved between offices), sometimes a CO in a
// different region entirely.
func (b *cableBuilder) staleCO(current *CO) *CO {
	rng := b.s.rng
	crossRegion := rng.Float64() < b.p.CrossRegionStaleFrac
	// Bounded rejection sampling over the operator's CO list.
	for i := 0; i < 64; i++ {
		cand := b.allCOs[rng.Intn(len(b.allCOs))]
		if cand == current || cand.Role == BackboneCO {
			continue
		}
		if crossRegion != (cand.Region != current.Region) {
			continue
		}
		return cand
	}
	return current
}

// formatName renders the hostname an interface would have if it lived in
// CO `as` (which is the interface's own CO for canonical names, and a
// different CO for stale names).
func (b *cableBuilder) formatName(j nameJob, as *CO) string {
	if b.p.Style == "rr" {
		return b.formatCharter(j, as)
	}
	return b.formatComcast(j, as)
}

// formatComcast renders Comcast-convention hostnames, e.g.
//
//	be-1102-cr02.sunnyvale.ca.ibone.comcast.net   (backbone)
//	ae-72-ar01.beaverton.or.bverton.comcast.net   (aggregation)
//	po-1-1-cbr01.troutdale.or.bverton.comcast.net (edge)
func (b *cableBuilder) formatComcast(j nameJob, as *CO) string {
	role := j.role
	if as.Role == BackboneCO {
		return fmt.Sprintf("be-%d-cr%02d.%s.ibone.comcast.net", 100*j.routerNum+j.ifaceNum, j.routerNum, as.Tag)
	}
	switch role {
	case "cr":
		// A regional CO claiming a backbone role cannot happen for
		// canonical names; for stale names fall through to ar.
		role = "ar"
		fallthrough
	case "ar":
		return fmt.Sprintf("ae-%d-ar%02d.%s.%s.comcast.net", j.ifaceNum, j.routerNum, as.Tag, as.Region)
	default: // edge
		if j.routerNum%2 == 1 {
			return fmt.Sprintf("po-%d-1-cbr%02d.%s.%s.comcast.net", j.ifaceNum, j.routerNum, as.Tag, as.Region)
		}
		return fmt.Sprintf("ae-%d-rur%d01.%s.%s.comcast.net", j.ifaceNum, j.routerNum, as.Tag, as.Region)
	}
}

// formatCharter renders Road Runner-convention hostnames, e.g.
//
//	bu-ether15.lsancarc0yw-bcr00.tbone.rr.com  (backbone)
//	agg2.lsancarc01r.socal.rr.com              (aggregation)
//	agg1.sndgcaxk02m.socal.rr.com              (edge)
func (b *cableBuilder) formatCharter(j nameJob, as *CO) string {
	if as.Role == BackboneCO {
		return fmt.Sprintf("bu-ether%d.%s0yw-bcr%02d.tbone.rr.com", j.ifaceNum, as.Tag, j.routerNum-1)
	}
	entity := "r"
	if j.role == "er" {
		if j.routerNum%2 == 1 {
			entity = "m"
		} else {
			entity = "h"
		}
	}
	if as.Role == EdgeCO && j.role != "er" {
		// Stale name claiming an EdgeCO: render with an edge entity.
		entity = "m"
	}
	return fmt.Sprintf("agg%d.%s%02d%s.%s.rr.com", j.ifaceNum%4+1, as.Tag, j.routerNum, entity, as.Region)
}
