package topogen

import (
	"net/netip"

	"repro/internal/ipalloc"
)

// ATTMobileProfile is the AT&T-like carrier: 11 regions, each a single
// mobile datacenter (EdgeCO) with 2-6 packet gateways (Table 7),
// aggregating to the carrier's own backbone (Fig. 17 left). The address
// plan follows Fig. 16a: user prefix with the region in bits 32-39,
// infrastructure prefix with the region in bits 32-47 and the PGW in
// bits 48-51.
func ATTMobileProfile() MobileProfile {
	return MobileProfile{
		Name:        "att-mobile",
		Arch:        ArchSingleEdge,
		UserBase:    netip.MustParseAddr("2600:380::"),
		RouterBase:  netip.MustParseAddr("2600:300::"),
		UserRegion:  ipalloc.Field{Start: 32, Len: 8},
		UserPGW:     ipalloc.Field{Start: 40, Len: 4},
		RouterField: ipalloc.Field{Start: 32, Len: 16},
		RouterPGW:   ipalloc.Field{Start: 48, Len: 4},
		MidHops:     []MidHopSpec{{Silent: true}}, // Fig. 16a hop 2 is "*"
		Regions: []MobileRegionSpec{
			{Name: "BTH", City: "Seattle", PGWs: 2, UserBits: 0x30, RouterBits: 0x2030},
			{Name: "CNC", City: "San Francisco", PGWs: 5, UserBits: 0x40, RouterBits: 0x2040},
			{Name: "VNN", City: "Los Angeles", PGWs: 5, UserBits: 0x6c, RouterBits: 0x2090},
			{Name: "ALN", City: "Dallas", PGWs: 5, UserBits: 0x10, RouterBits: 0x2010},
			{Name: "HST", City: "Houston", PGWs: 5, UserBits: 0xa0, RouterBits: 0x20a0},
			{Name: "CHC", City: "Chicago", PGWs: 5, UserBits: 0xb0, RouterBits: 0x20b0},
			{Name: "AKR", City: "Akron", PGWs: 3, UserBits: 0x00, RouterBits: 0x2000},
			{Name: "ALP", City: "Alpharetta", PGWs: 6, UserBits: 0x20, RouterBits: 0x2020},
			{Name: "NYC", City: "New York", PGWs: 4, UserBits: 0x50, RouterBits: 0x2050},
			{Name: "ART", City: "Washington", PGWs: 3, UserBits: 0x70, RouterBits: 0x2070},
			{Name: "GSV", City: "Orlando", PGWs: 3, UserBits: 0x80, RouterBits: 0x2080},
		},
	}
}

// VerizonProfile is the Verizon-like carrier: many wireless-region
// EdgeCOs grouped under shared backbone regions (Fig. 17 middle; Table
// 8), alter.net-style backbone rDNS, and speedtest servers with EdgeCO
// codes in their names. The address plan follows Fig. 16b: user bits
// 24-31 identify the backbone region, 32-39 the EdgeCO, 40-43 the PGW;
// infrastructure addresses carry the EdgeCO in bits 64-75.
func VerizonProfile() MobileProfile {
	// Region field value = backbone byte << 8 | EdgeCO byte, matching
	// the paper's "1012:b1"-style notation.
	rb := func(backbone, edge uint64) uint64 { return backbone<<8 | 0xb0 + edge }
	return MobileProfile{
		Name:          "verizon",
		Arch:          ArchMultiEdge,
		UserBase:      netip.MustParseAddr("2600:1000::"),
		RouterBase:    netip.MustParseAddr("2001:4888::"),
		UserRegion:    ipalloc.Field{Start: 24, Len: 16},
		UserPGW:       ipalloc.Field{Start: 40, Len: 4},
		RouterField:   ipalloc.Field{Start: 64, Len: 12},
		RouterPGW:     ipalloc.Field{Start: 76, Len: 4},
		SpeedtestRDNS: true,
		SwitchProb:    0.05,
		BackboneRDNS:  "alter.net",
		// Fig. 16b shows hops 2-5 unresponsive inside the packet core.
		MidHops: []MidHopSpec{{Silent: true}, {Silent: true}},
		Regions: []MobileRegionSpec{
			{Name: "RDMEWA", City: "Redmond", Backbone: "SEA", PGWs: 1, UserBits: rb(0x0f, 0), RouterBits: 0x62e},
			{Name: "HLBOOR", City: "Portland", Backbone: "SEA", PGWs: 1, UserBits: rb(0x0f, 1), RouterBits: 0x62f},
			{Name: "SNVACA", City: "Sunnyvale", Backbone: "SJC", PGWs: 2, UserBits: rb(0x10, 0), RouterBits: 0x630},
			{Name: "RCKLCA", City: "Sacramento", Backbone: "SJC", PGWs: 2, UserBits: rb(0x10, 1), RouterBits: 0x631},
			{Name: "LSVKNV", City: "Las Vegas", Backbone: "SJC", PGWs: 2, UserBits: rb(0x11, 0), RouterBits: 0x632},
			{Name: "AZUSCA", City: "Azusa", Backbone: "LAX", PGWs: 2, UserBits: rb(0x12, 0), RouterBits: 0x633},
			{Name: "VISTCA", City: "Vista", Backbone: "LAX", PGWs: 3, UserBits: rb(0x12, 1), RouterBits: 0x634},
			{Name: "HCHLIL", City: "Hinsdale", Backbone: "CHI", PGWs: 2, UserBits: rb(0x08, 0), RouterBits: 0x635},
			{Name: "NWBLWI", City: "New Berlin", Backbone: "CHI", PGWs: 2, UserBits: rb(0x08, 1), RouterBits: 0x636},
			{Name: "SFLDMI", City: "Southfield", Backbone: "CHI", PGWs: 1, UserBits: rb(0x09, 1), RouterBits: 0x637},
			{Name: "STLSMO", City: "Saint Louis", Backbone: "CHI", PGWs: 1, UserBits: rb(0x0a, 0), RouterBits: 0x638},
			{Name: "BLTNMN", City: "Bloomington", Backbone: "CHI", PGWs: 3, UserBits: rb(0x14, 1), RouterBits: 0x639},
			{Name: "OMALNE", City: "Omaha", Backbone: "CHI", PGWs: 2, UserBits: rb(0x14, 2), RouterBits: 0x63a},
			{Name: "ESYRNY", City: "East Syracuse", Backbone: "PHIL", PGWs: 1, UserBits: rb(0x02, 1), RouterBits: 0x63b},
			{Name: "AURSCO", City: "Aurora", Backbone: "DEN", PGWs: 2, UserBits: rb(0x0e, 0), RouterBits: 0x63c},
			{Name: "WJRDUT", City: "West Jordan", Backbone: "DEN", PGWs: 2, UserBits: rb(0x0e, 1), RouterBits: 0x63d},
			{Name: "ELSSTX", City: "El Paso", Backbone: "DLLSTX", PGWs: 1, UserBits: rb(0x0c, 2), RouterBits: 0x63e},
			{Name: "HSTWTX", City: "Houston", Backbone: "DLLSTX", PGWs: 2, UserBits: rb(0x0d, 0), RouterBits: 0x63f},
			{Name: "BTRHLA", City: "Baton Rouge", Backbone: "DLLSTX", PGWs: 2, UserBits: rb(0x0d, 1), RouterBits: 0x640},
			{Name: "MIAMFL", City: "Miami", Backbone: "MIA", PGWs: 2, UserBits: rb(0x0b, 0), RouterBits: 0x641},
			{Name: "ORLHFL", City: "Orlando", Backbone: "MIA", PGWs: 2, UserBits: rb(0x0b, 1), RouterBits: 0x642},
			{Name: "CHRXNC", City: "Charlotte", Backbone: "ATL", PGWs: 4, UserBits: rb(0x04, 0), RouterBits: 0x643},
			{Name: "WHCKTN", City: "Whitehouse", Backbone: "ATL", PGWs: 2, UserBits: rb(0x04, 1), RouterBits: 0x644},
			{Name: "ALPSGA", City: "Alpharetta", Backbone: "ATL", PGWs: 2, UserBits: rb(0x05, 0), RouterBits: 0x645},
			{Name: "CHNTVA", City: "Chantilly", Backbone: "IAD", PGWs: 2, UserBits: rb(0x03, 0), RouterBits: 0x646},
			{Name: "JHTWPA", City: "Johnstown", Backbone: "IAD", PGWs: 1, UserBits: rb(0x03, 1), RouterBits: 0x647},
			{Name: "WLTPNJ", City: "Wall Township", Backbone: "NYC", PGWs: 2, UserBits: rb(0x17, 0), RouterBits: 0x648},
			{Name: "WSBOMA", City: "Westborough", Backbone: "BOS", PGWs: 2, UserBits: rb(0x00, 0), RouterBits: 0x649},
			{Name: "BBTPNJ", City: "Bridgewater", Backbone: "BOS", PGWs: 1, UserBits: rb(0x00, 1), RouterBits: 0x64a},
		},
	}
}

// TMobileProfile is the T-Mobile-like carrier: distributed PGW sites
// with carrier-global /40 identifiers, each site homed to a wholesale
// backbone provider (Fig. 17 right), and phones that attach to any of
// their nearest sites. The Gulf coast has no site: phones there land on
// distant EdgeCOs (the paper's Florida/Louisiana anomaly). The address
// plan follows Fig. 16c.
func TMobileProfile() MobileProfile {
	return MobileProfile{
		Name:           "tmobile",
		Arch:           ArchMultiBackbone,
		UserBase:       netip.MustParseAddr("2607:fb90::"),
		RouterBase:     netip.MustParseAddr("fd00:976a::"),
		UserRegion:     ipalloc.Field{Start: 32, Len: 0}, // no region field
		UserPGW:        ipalloc.Field{Start: 32, Len: 8},
		RouterField:    ipalloc.Field{Start: 32, Len: 16},
		RouterPGW:      ipalloc.Field{Start: 48, Len: 8},
		GlobalPGWIDs:   true,
		AttachNearestK: 2,
		// Fig. 16c: T-Mobile's core hops respond from ULA space.
		MidHops: []MidHopSpec{
			{Base: netip.MustParseAddr("fc00:420::")},
			{Base: netip.MustParseAddr("fc00:420::")},
		},
		Regions: []MobileRegionSpec{
			{Name: "SEAT", City: "Seattle", PGWs: 2, RouterBits: 0x14f0, Provider: "zayo"},
			{Name: "SNFC", City: "San Francisco", PGWs: 2, RouterBits: 0x14f1, Provider: "lumen"},
			{Name: "LSAN", City: "Los Angeles", PGWs: 3, RouterBits: 0x14f2, Provider: "zayo"},
			{Name: "DNVR", City: "Denver", PGWs: 2, RouterBits: 0x14f3, Provider: "vzb"},
			{Name: "DLLS", City: "Dallas", PGWs: 3, RouterBits: 0x14f4, Provider: "lumen"},
			{Name: "CHCG", City: "Chicago", PGWs: 3, RouterBits: 0x14f5, Provider: "zayo"},
			{Name: "MNPL", City: "Minneapolis", PGWs: 2, RouterBits: 0x14f6, Provider: "vzb"},
			{Name: "NYCM", City: "New York", PGWs: 3, RouterBits: 0x14f7, Provider: "lumen"},
			{Name: "CHSC", City: "Charleston, SC", PGWs: 2, RouterBits: 0x14f8, Provider: "zayo"},
			{Name: "MIAM", City: "Miami", PGWs: 2, RouterBits: 0x14f9, Provider: "vzb"},
			{Name: "PHNX", City: "Phoenix", PGWs: 2, RouterBits: 0x14fa, Provider: "lumen"},
		},
	}
}
