// Package ping collects RTT series over the simulated network: plain
// echo series (the paper's 100-ping cloud studies, §5.5) and the
// TTL-limited echo trick used to elicit responses from AT&T EdgeCO
// devices that cannot be pinged directly (§6.3).
package ping

import (
	"net/netip"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/probesched"
	"repro/internal/vclock"
)

// Pinger sends echo series on a virtual clock.
type Pinger struct {
	Net   *netsim.Network
	Clock *vclock.Clock
	// Timeout is the wait for an unanswered probe (default 1s).
	Timeout time.Duration
	// Interval spaces successive probes (default 10ms, scamper-like).
	Interval time.Duration
}

// Series summarizes one measurement run.
type Series struct {
	Sent, Received int
	// Lost and RateLimited classify the unanswered probes: RateLimited
	// counts replies suppressed by ICMP rate limiting, Lost everything
	// else — including replies of an unusable type (a series only
	// accepts its expected reply kind), so Sent == Received + Lost +
	// RateLimited always holds.
	Lost, RateLimited int
	RTTs              []time.Duration // the received RTTs in send order
}

// Stats exports the series' outcome ledger for campaign accounting.
func (s Series) Stats() probesched.ProbeStats {
	return probesched.ProbeStats{
		Sent: s.Sent, Replied: s.Received, Lost: s.Lost, RateLimited: s.RateLimited,
	}
}

// account files an unusable reply into the series' loss buckets.
func (s *Series) account(r netsim.Reply) {
	if r.Outcome() == netsim.OutcomeRateLimited {
		s.RateLimited++
	} else {
		s.Lost++
	}
}

// Min returns the minimum RTT, or false when nothing was received.
func (s Series) Min() (time.Duration, bool) {
	if len(s.RTTs) == 0 {
		return 0, false
	}
	min := s.RTTs[0]
	for _, r := range s.RTTs[1:] {
		if r < min {
			min = r
		}
	}
	return min, true
}

// Median returns the median RTT, or false when nothing was received.
func (s Series) Median() (time.Duration, bool) {
	if len(s.RTTs) == 0 {
		return 0, false
	}
	sorted := append([]time.Duration(nil), s.RTTs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2], true
}

func (p *Pinger) defaults() {
	if p.Timeout == 0 {
		p.Timeout = time.Second
	}
	if p.Interval == 0 {
		p.Interval = 10 * time.Millisecond
	}
}

// Ping sends count echo requests from src to dst. The pinger's
// configuration is treated as read-only (defaults apply to a stack
// copy), so one Pinger may serve concurrent series as long as each
// carries its own clock — which is how the probe scheduler drives it.
func (p *Pinger) Ping(src, dst netip.Addr, count int) Series {
	cfg := *p
	cfg.defaults()
	var s Series
	for i := 0; i < count; i++ {
		r := cfg.Net.Probe(cfg.Clock.Now(), netsim.ProbeSpec{
			Src: src, Dst: dst, TTL: 64, Proto: netsim.ICMPEcho, Seq: uint32(i),
			FlowID: uint16(i), // pings are not Paris; let ECMP spread them
		})
		s.Sent++
		if r.Type == netsim.EchoReply {
			s.Received++
			s.RTTs = append(s.RTTs, r.RTT)
			cfg.Clock.Advance(r.RTT)
		} else {
			s.account(r)
			cfg.Clock.Advance(cfg.Timeout)
		}
		cfg.Clock.Advance(cfg.Interval)
	}
	return s
}

// TTLLimited sends count echo requests with the given TTL toward dst and
// collects the time-exceeded responses. Setting TTL to the penultimate
// traceroute hop measures the RTT to the device in front of dst — the
// paper's trick for latency to AT&T EdgeCO equipment that drops direct
// pings (§6.3). Probes share one flow ID so every probe takes the same
// path to the same penultimate device.
func (p *Pinger) TTLLimited(src, dst netip.Addr, ttl int, count int) (Series, netip.Addr) {
	cfg := *p
	cfg.defaults()
	var s Series
	var from netip.Addr
	fid := uint16(0x7e77)
	// Every probe rides one flow, so compile the path once and replay
	// it per attempt instead of re-resolving per probe.
	flow := cfg.Net.CompileFlow(src, dst, fid)
	for i := 0; i < count; i++ {
		r := flow.Probe(cfg.Clock.Now(), uint8(ttl), netsim.ICMPEcho, uint32(i))
		s.Sent++
		if r.Type == netsim.TTLExceeded {
			s.Received++
			s.RTTs = append(s.RTTs, r.RTT)
			from = r.From
			cfg.Clock.Advance(r.RTT)
		} else {
			s.account(r)
			cfg.Clock.Advance(cfg.Timeout)
		}
		cfg.Clock.Advance(cfg.Interval)
	}
	return s, from
}

// Outcome is the scheduler-facing result of one ping job: the series
// plus, for TTL-limited jobs, the responding device address.
type Outcome struct {
	Series
	From netip.Addr
}

// WithClock returns a copy of the pinger bound to clk, for callers that
// want to hold the binding; the scheduler path binds on the stack
// instead (see Probe).
func (p *Pinger) WithClock(clk *vclock.Clock) *Pinger {
	cfg := *p
	cfg.Clock = clk
	return &cfg
}

// Probe implements probesched.Prober: a plain echo series when req.TTL
// is zero, the §6.3 TTL-limited series otherwise. The result is an
// Outcome. The clock binding is a stack copy so the per-job dispatch
// allocates nothing beyond the boxed result.
func (p *Pinger) Probe(clk *vclock.Clock, req probesched.Request) probesched.Result {
	return p.outcome(clk, req)
}

// outcome is Probe without the interface boxing.
func (p *Pinger) outcome(clk *vclock.Clock, req probesched.Request) Outcome {
	cfg := *p
	cfg.Clock = clk
	if req.TTL > 0 {
		s, from := cfg.TTLLimited(req.Src, req.Dst, req.TTL, req.Count)
		return Outcome{Series: s, From: from}
	}
	return Outcome{Series: cfg.Ping(req.Src, req.Dst, req.Count)}
}

// Outcomes runs one ping job per request across the pool and returns
// the outcomes in request order, with Pool.Fan's clock semantics but a
// concretely typed result slice (no per-job interface boxing).
func (p *Pinger) Outcomes(pool *probesched.Pool, reqs []probesched.Request) []Outcome {
	return probesched.Map(pool, reqs, p.outcome)
}
