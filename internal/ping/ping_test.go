package ping

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/vclock"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func testNet(t *testing.T) (*netsim.Network, *netsim.Host, *netsim.Host, []*netsim.Router) {
	t.Helper()
	net := netsim.New(23)
	rs := make([]*netsim.Router, 4)
	for i := range rs {
		rs[i] = net.AddRouter(&netsim.Router{Name: fmt.Sprintf("r%d", i+1), ISP: "t", CO: fmt.Sprintf("co%d", i+1)})
	}
	for i := 0; i+1 < len(rs); i++ {
		if _, err := net.ConnectRouters(rs[i], rs[i+1],
			addr(fmt.Sprintf("10.0.%d.1", i)), addr(fmt.Sprintf("10.0.%d.2", i)), time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	vp := &netsim.Host{Addr: addr("192.168.1.1"), Router: rs[0], ISP: "t", RespondsToPing: true}
	tgt := &netsim.Host{Addr: addr("192.168.9.1"), Router: rs[3], ISP: "t", RespondsToPing: true}
	for _, h := range []*netsim.Host{vp, tgt} {
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
	}
	return net, vp, tgt, rs
}

func clock() *vclock.Clock {
	return vclock.New(time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC))
}

func TestPingSeries(t *testing.T) {
	net, vp, tgt, _ := testNet(t)
	p := &Pinger{Net: net, Clock: clock()}
	s := p.Ping(vp.Addr, tgt.Addr, 100)
	if s.Sent != 100 || s.Received != 100 {
		t.Fatalf("sent %d received %d", s.Sent, s.Received)
	}
	min, ok := s.Min()
	if !ok {
		t.Fatal("no min")
	}
	med, _ := s.Median()
	// 3 links * 1ms * 2 = 6ms base RTT.
	if min < 6*time.Millisecond || min > 7*time.Millisecond {
		t.Errorf("min RTT = %v, want ~6ms", min)
	}
	if med < min {
		t.Errorf("median %v < min %v", med, min)
	}
	// With 100 samples of bounded jitter, min should be close to the
	// jitter-free floor (within the 400us jitter bound).
	if med-min > 500*time.Microsecond {
		t.Errorf("median-min spread = %v, want < jitter bound", med-min)
	}
}

func TestPingUnresponsive(t *testing.T) {
	net, vp, tgt, _ := testNet(t)
	tgt.RespondsToPing = false
	p := &Pinger{Net: net, Clock: clock()}
	s := p.Ping(vp.Addr, tgt.Addr, 5)
	if s.Received != 0 {
		t.Errorf("received %d from silent host", s.Received)
	}
	if _, ok := s.Min(); ok {
		t.Error("Min() on empty series claims a value")
	}
	if _, ok := s.Median(); ok {
		t.Error("Median() on empty series claims a value")
	}
}

func TestTTLLimitedElicitsPenultimate(t *testing.T) {
	net, vp, tgt, _ := testNet(t)
	// The destination does not answer pings, as with AT&T customers.
	tgt.RespondsToPing = false
	p := &Pinger{Net: net, Clock: clock()}
	// Hop 3 is the last router (r4) before the host: its inbound
	// interface is 10.0.2.2.
	s, from := p.TTLLimited(vp.Addr, tgt.Addr, 3, 20)
	if s.Received != 20 {
		t.Fatalf("received %d/20", s.Received)
	}
	if from != addr("10.0.2.2") {
		t.Errorf("TTL-limited replies from %v, want 10.0.2.2", from)
	}
	min, _ := s.Min()
	// 3 links but reply comes from hop 3: ~6ms RTT.
	if min < 5*time.Millisecond || min > 8*time.Millisecond {
		t.Errorf("penultimate RTT = %v", min)
	}
}

func TestPingAdvancesClock(t *testing.T) {
	net, vp, tgt, _ := testNet(t)
	c := clock()
	p := &Pinger{Net: net, Clock: c}
	before := c.Now()
	p.Ping(vp.Addr, tgt.Addr, 10)
	if !c.Now().After(before.Add(50 * time.Millisecond)) {
		t.Error("clock did not advance through ping intervals")
	}
}
