package edgeplan

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyBasics(t *testing.T) {
	lat := Latency{
		"aggA": {"e1": 2, "e2": 3, "e3": 9},
		"aggB": {"e3": 2, "e4": 4},
	}
	p := Greedy(lat, 5, 1.0)
	if p.Total != 4 || p.Covered != 4 {
		t.Fatalf("coverage = %d/%d", p.Covered, p.Total)
	}
	if len(p.Hosts) != 2 {
		t.Fatalf("hosts = %v", p.Hosts)
	}
	if p.Frac() != 1.0 {
		t.Errorf("frac = %v", p.Frac())
	}
}

func TestGreedyStopsAtTarget(t *testing.T) {
	lat := Latency{}
	for i := 0; i < 10; i++ {
		h := fmt.Sprintf("agg%d", i)
		lat[h] = map[string]float64{fmt.Sprintf("e%d", i): 1}
	}
	p := Greedy(lat, 5, 0.5)
	if len(p.Hosts) != 5 || p.Covered != 5 {
		t.Errorf("hosts=%d covered=%d, want 5 each for a 50%% target", len(p.Hosts), p.Covered)
	}
}

func TestGreedyUnreachableBudget(t *testing.T) {
	lat := Latency{"aggA": {"e1": 20, "e2": 30}}
	p := Greedy(lat, 5, 1.0)
	if p.Covered != 0 || len(p.Hosts) != 0 {
		t.Errorf("impossible budget covered %d via %v", p.Covered, p.Hosts)
	}
	if Greedy(Latency{}, 5, 1).Total != 0 {
		t.Error("empty latency matrix has nonzero total")
	}
}

func TestGreedyPrefersBigHosts(t *testing.T) {
	lat := Latency{
		"big":    {"e1": 1, "e2": 1, "e3": 1},
		"small1": {"e1": 1},
		"small2": {"e2": 1},
		"small3": {"e3": 1},
	}
	p := Greedy(lat, 5, 1.0)
	if len(p.Hosts) != 1 || p.Hosts[0] != "big" {
		t.Errorf("greedy chose %v, want [big]", p.Hosts)
	}
	if p.PerHost[0] != 3 {
		t.Errorf("marginal gain = %v", p.PerHost)
	}
}

func TestGreedyProperties(t *testing.T) {
	f := func(seed int64, nHosts, nEdges uint8, budget uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		h := int(nHosts%8) + 1
		e := int(nEdges%20) + 1
		b := float64(budget%10) + 1
		lat := Latency{}
		for i := 0; i < h; i++ {
			m := map[string]float64{}
			for j := 0; j < e; j++ {
				if rng.Float64() < 0.6 {
					m[fmt.Sprintf("e%d", j)] = rng.Float64() * 12
				}
			}
			lat[fmt.Sprintf("h%d", i)] = m
		}
		p := Greedy(lat, b, 1.0)
		// Coverage never exceeds the universe; hosts are unique; each
		// chosen host contributed positive gain; coverage is feasible
		// (every covered edge really is within budget of some host).
		if p.Covered > p.Total || len(p.Hosts) > h {
			return false
		}
		seen := map[string]bool{}
		for i, host := range p.Hosts {
			if seen[host] || p.PerHost[i] <= 0 {
				return false
			}
			seen[host] = true
		}
		// Re-verify the claimed coverage.
		covered := map[string]bool{}
		for _, host := range p.Hosts {
			for e2, ms := range lat[host] {
				if ms <= b {
					covered[e2] = true
				}
			}
		}
		return len(covered) == p.Covered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	lat := Latency{
		"a": {"e1": 1, "e2": 1},
		"b": {"e1": 1, "e2": 1}, // identical coverage: tie
	}
	p1 := Greedy(lat, 5, 1.0)
	p2 := Greedy(lat, 5, 1.0)
	if p1.Hosts[0] != p2.Hosts[0] || p1.Hosts[0] != "a" {
		t.Errorf("tie-break not deterministic: %v vs %v", p1.Hosts, p2.Hosts)
	}
}

func TestCompare(t *testing.T) {
	lat := Latency{
		"aggA": {"e1": 2, "e2": 2, "e3": 2, "e4": 2},
		"aggB": {"e5": 2, "e6": 2},
	}
	c := Compare(lat, 5, 0.95)
	if c.EdgeCOCount != 6 {
		t.Errorf("edge count = %d", c.EdgeCOCount)
	}
	if c.SitesSaved != 4 {
		t.Errorf("sites saved = %d, want 4 (6 EdgeCOs vs 2 AggCO hosts)", c.SitesSaved)
	}
}
