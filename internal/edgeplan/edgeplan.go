// Package edgeplan implements the paper's second future-work direction
// (§8): using the inferred aggregation hierarchy to place edge-compute
// infrastructure. Given measured host-to-EdgeCO latencies it solves the
// placement question the paper poses — serve nearly all users within an
// AR/VR latency budget from a small set of AggCOs rather than deploying
// into every EdgeCO.
package edgeplan

import "sort"

// Latency maps candidate host CO -> EdgeCO -> round-trip milliseconds.
type Latency map[string]map[string]float64

// Placement is a chosen set of host COs and its coverage.
type Placement struct {
	Hosts []string
	// Covered counts EdgeCOs within budget of some chosen host; Total
	// is the EdgeCO universe size.
	Covered, Total int
	// PerHost records how many newly-covered EdgeCOs each host added
	// when it was chosen (greedy marginal gain), aligned with Hosts.
	PerHost []int
}

// Frac is the covered fraction.
func (p Placement) Frac() float64 {
	if p.Total == 0 {
		return 0
	}
	return float64(p.Covered) / float64(p.Total)
}

// Greedy picks hosts by maximum marginal coverage until the target
// fraction of EdgeCOs sits within budgetMs of a chosen host, or no host
// adds coverage. The edge universe is the union of all EdgeCOs in the
// latency matrix; ties break lexicographically for determinism.
func Greedy(lat Latency, budgetMs, targetFrac float64) Placement {
	universe := map[string]bool{}
	for _, edges := range lat {
		for e := range edges {
			universe[e] = true
		}
	}
	var p Placement
	p.Total = len(universe)
	if p.Total == 0 {
		return p
	}
	covered := map[string]bool{}
	chosen := map[string]bool{}
	hosts := make([]string, 0, len(lat))
	for h := range lat {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for float64(len(covered)) < targetFrac*float64(p.Total) {
		best, bestGain := "", 0
		for _, h := range hosts {
			if chosen[h] {
				continue
			}
			gain := 0
			for e, ms := range lat[h] {
				if !covered[e] && ms <= budgetMs {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = h, gain
			}
		}
		if bestGain == 0 {
			break
		}
		chosen[best] = true
		p.Hosts = append(p.Hosts, best)
		p.PerHost = append(p.PerHost, bestGain)
		for e, ms := range lat[best] {
			if ms <= budgetMs {
				covered[e] = true
			}
		}
	}
	p.Covered = len(covered)
	return p
}

// CompareStrategies contrasts the two deployment strategies the paper
// discusses (§5.5): hosting in every EdgeCO (always full coverage, cost
// = EdgeCO count) versus greedy AggCO placement under the same budget.
type Comparison struct {
	EdgeCOCount  int
	AggPlacement Placement
	// SitesSaved is how many fewer facilities the AggCO strategy needs
	// for the coverage it achieves.
	SitesSaved int
}

// Compare runs the greedy AggCO placement and reports the savings.
func Compare(lat Latency, budgetMs, targetFrac float64) Comparison {
	p := Greedy(lat, budgetMs, targetFrac)
	return Comparison{
		EdgeCOCount:  p.Total,
		AggPlacement: p,
		SitesSaved:   p.Total - len(p.Hosts),
	}
}
