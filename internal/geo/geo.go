// Package geo provides geographic primitives for the regional access
// network simulator: a database of U.S. cities with coordinates, great
// circle distance, fiber-propagation latency estimates, and hexagonal
// binning used to render latency maps (paper Fig. 18).
package geo

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is a location on the Earth's surface in decimal degrees.
type Point struct {
	Lat float64
	Lon float64
}

// EarthRadiusKm is the mean Earth radius used for great-circle math.
const EarthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between a and b using the
// haversine formula.
func DistanceKm(a, b Point) float64 {
	const deg = math.Pi / 180
	lat1, lon1 := a.Lat*deg, a.Lon*deg
	lat2, lon2 := b.Lat*deg, b.Lon*deg
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// FiberSpeedKmPerMs is the propagation speed of light in fiber,
// approximately 2/3 of c, expressed in km per millisecond.
const FiberSpeedKmPerMs = 200.0

// FiberPathInflation accounts for the fact that fiber conduits follow
// roads and rail rather than great circles. Durairajan et al. report
// typical inflation factors between 1.2 and 2; we use a middle value.
const FiberPathInflation = 1.4

// PropagationDelay returns the one-way fiber propagation delay between two
// points, including conduit path inflation.
func PropagationDelay(a, b Point) time.Duration {
	km := DistanceKm(a, b) * FiberPathInflation
	ms := km / FiberSpeedKmPerMs
	return time.Duration(ms * float64(time.Millisecond))
}

// City is one entry in the embedded U.S. city database.
type City struct {
	Name  string
	State string // two-letter postal code
	Point Point
	// Metro marks cities that anchor a metropolitan area; topology
	// generators place AggCOs and BackboneCOs in metro cities.
	Metro bool
}

// ByName returns the city with the given name, or false when the database
// has no such city. Lookup is case-sensitive and names are unique.
func ByName(name string) (City, bool) {
	i, ok := cityIndex[name]
	if !ok {
		return City{}, false
	}
	return usCities[i], true
}

// MustByName is ByName for compile-time-known city names; it panics when
// the city is missing, which indicates a programming error in a generator
// table rather than a runtime condition.
func MustByName(name string) City {
	c, ok := ByName(name)
	if !ok {
		panic(fmt.Sprintf("geo: unknown city %q", name))
	}
	return c
}

// InState returns all database cities in the given state, sorted by name.
func InState(state string) []City {
	var out []City
	for _, c := range usCities {
		if c.State == state {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns a copy of the full city database.
func All() []City {
	out := make([]City, len(usCities))
	copy(out, usCities)
	return out
}

// States returns the sorted set of states present in the database.
func States() []string {
	seen := map[string]bool{}
	for _, c := range usCities {
		seen[c.State] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Nearest returns the database city closest to p.
func Nearest(p Point) City {
	best := usCities[0]
	bestD := math.Inf(1)
	for _, c := range usCities {
		if d := DistanceKm(p, c.Point); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// NearestState approximates the U.S. state containing p as the state of
// the nearest database city. This is the same fidelity the paper gets
// from cell-tower geolocation of a phone in a truck.
func NearestState(p Point) string {
	return Nearest(p).State
}

// Interpolate returns the point a fraction f of the way from a to b along
// the great-circle path, using simple spherical linear interpolation.
func Interpolate(a, b Point, f float64) Point {
	if f <= 0 {
		return a
	}
	if f >= 1 {
		return b
	}
	// For the continental-US distances we deal with, linear interpolation
	// of lat/lon is within a few km of the true great-circle point, which
	// is far below the resolution of our latency model.
	return Point{
		Lat: a.Lat + (b.Lat-a.Lat)*f,
		Lon: a.Lon + (b.Lon-a.Lon)*f,
	}
}
