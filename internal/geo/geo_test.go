package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		a, b   string
		km     float64
		tolPct float64
	}{
		{"San Diego", "Los Angeles", 180, 10},
		{"New York", "Los Angeles", 3940, 5},
		{"Boston", "Hartford", 160, 15},
		{"Seattle", "Miami", 4400, 5},
		{"Chicago", "Denver", 1480, 5},
	}
	for _, tt := range tests {
		a := MustByName(tt.a)
		b := MustByName(tt.b)
		got := DistanceKm(a.Point, b.Point)
		if math.Abs(got-tt.km)/tt.km*100 > tt.tolPct {
			t.Errorf("DistanceKm(%s, %s) = %.0f km, want %.0f km ±%.0f%%", tt.a, tt.b, got, tt.km, tt.tolPct)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	cities := All()
	f := func(i, j uint16) bool {
		a := cities[int(i)%len(cities)].Point
		b := cities[int(j)%len(cities)].Point
		dab := DistanceKm(a, b)
		dba := DistanceKm(b, a)
		if math.Abs(dab-dba) > 1e-6 {
			return false // symmetry
		}
		if dab < 0 {
			return false // non-negativity
		}
		if a == b && dab != 0 {
			return false // identity
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	cities := All()
	f := func(i, j, k uint16) bool {
		a := cities[int(i)%len(cities)].Point
		b := cities[int(j)%len(cities)].Point
		c := cities[int(k)%len(cities)].Point
		return DistanceKm(a, c) <= DistanceKm(a, b)+DistanceKm(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropagationDelay(t *testing.T) {
	sd := MustByName("San Diego")
	la := MustByName("Los Angeles")
	d := PropagationDelay(sd.Point, la.Point)
	// ~180 km * 1.4 inflation / 200 km/ms ≈ 1.26 ms one way.
	if d < 800*time.Microsecond || d > 2*time.Millisecond {
		t.Errorf("PropagationDelay(SD, LA) = %v, want ~1.3ms", d)
	}
	if PropagationDelay(sd.Point, sd.Point) != 0 {
		t.Errorf("zero-distance delay should be 0")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Atlantis"); ok {
		t.Error("ByName(Atlantis) should not exist")
	}
	c, ok := ByName("Nashville")
	if !ok || c.State != "TN" {
		t.Errorf("ByName(Nashville) = %+v, %v", c, ok)
	}
	// Qualified names disambiguate duplicates.
	pme, ok := ByName("Portland, ME")
	if !ok || pme.State != "ME" {
		t.Errorf("ByName(Portland, ME) = %+v, %v", pme, ok)
	}
	por, ok := ByName("Portland")
	if !ok || por.State != "OR" {
		t.Errorf("bare Portland should be the first (OR) entry, got %+v", por)
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName on unknown city should panic")
		}
	}()
	MustByName("Gotham")
}

func TestStateCoverage(t *testing.T) {
	states := States()
	if len(states) < 44 {
		t.Errorf("city database covers %d states, want >= 44 for the shipping campaign", len(states))
	}
	for _, s := range states {
		if len(s) != 2 {
			t.Errorf("bad state code %q", s)
		}
	}
}

func TestInState(t *testing.T) {
	ca := InState("CA")
	if len(ca) < 20 {
		t.Errorf("CA should have >= 20 cities (San Diego study density), got %d", len(ca))
	}
	for i := 1; i < len(ca); i++ {
		if ca[i-1].Name > ca[i].Name {
			t.Error("InState results not sorted")
		}
	}
	if got := InState("ZZ"); len(got) != 0 {
		t.Errorf("InState(ZZ) = %v, want empty", got)
	}
}

func TestNearest(t *testing.T) {
	sd := MustByName("San Diego")
	got := Nearest(Point{Lat: sd.Point.Lat + 0.01, Lon: sd.Point.Lon - 0.01})
	if got.Name != "San Diego" {
		t.Errorf("Nearest(near SD) = %s", got.Name)
	}
	if s := NearestState(Point{Lat: 46.8, Lon: -100.5}); s != "ND" {
		t.Errorf("NearestState(central ND) = %s, want ND", s)
	}
}

func TestInterpolate(t *testing.T) {
	a := Point{Lat: 30, Lon: -100}
	b := Point{Lat: 40, Lon: -80}
	if got := Interpolate(a, b, 0); got != a {
		t.Errorf("f=0 should return a, got %+v", got)
	}
	if got := Interpolate(a, b, 1); got != b {
		t.Errorf("f=1 should return b, got %+v", got)
	}
	mid := Interpolate(a, b, 0.5)
	if math.Abs(mid.Lat-35) > 1e-9 || math.Abs(mid.Lon+90) > 1e-9 {
		t.Errorf("midpoint = %+v", mid)
	}
	// Monotonic distance: points later on the path are closer to b.
	prev := DistanceKm(a, b)
	for f := 0.1; f < 1.0; f += 0.1 {
		d := DistanceKm(Interpolate(a, b, f), b)
		if d > prev+1e-9 {
			t.Errorf("interpolation not monotonic toward b at f=%.1f", f)
		}
		prev = d
	}
}

func TestHexBinDeterministicAndLocal(t *testing.T) {
	h := HexBinner{SizeDeg: 1.5}
	p := MustByName("Denver").Point
	if h.Bin(p) != h.Bin(p) {
		t.Error("Bin not deterministic")
	}
	// Two points within a few km should share a bin (generally).
	q := Point{Lat: p.Lat + 0.01, Lon: p.Lon + 0.01}
	if h.Bin(p) != h.Bin(q) {
		t.Skip("boundary case: points straddle a hex edge")
	}
	// Distant cities must not share a bin.
	if h.Bin(MustByName("Seattle").Point) == h.Bin(MustByName("Miami").Point) {
		t.Error("Seattle and Miami share a hex bin")
	}
}

func TestHexCenterRoundTrip(t *testing.T) {
	h := HexBinner{SizeDeg: 1.5}
	for _, c := range All() {
		bin := h.Bin(c.Point)
		center := h.Center(bin)
		if h.Bin(center) != bin {
			t.Errorf("center of %s's bin does not map back to the same bin", c.Name)
		}
	}
}

func TestHexAggregateKeepsMinimum(t *testing.T) {
	agg := NewHexAggregate(1.5)
	p := MustByName("Chicago").Point
	agg.Add(p, 40)
	agg.Add(p, 25)
	agg.Add(p, 60)
	res := agg.Results()
	if len(res) != 1 {
		t.Fatalf("got %d hexes, want 1", len(res))
	}
	if res[0].Value != 25 {
		t.Errorf("hex value = %v, want 25 (minimum)", res[0].Value)
	}
}

func TestHexAggregateSorted(t *testing.T) {
	agg := NewHexAggregate(1.5)
	for _, name := range []string{"Seattle", "Miami", "Denver", "Boston", "San Diego"} {
		agg.Add(MustByName(name).Point, 1)
	}
	res := agg.Results()
	if agg.Len() != len(res) {
		t.Errorf("Len()=%d, Results()=%d", agg.Len(), len(res))
	}
	for i := 1; i < len(res); i++ {
		a, b := res[i-1].Center, res[i].Center
		if a.Lon > b.Lon || (a.Lon == b.Lon && a.Lat > b.Lat) {
			t.Error("results not sorted west-to-east")
		}
	}
}
