package geo

import (
	"math"
	"sort"
)

// HexBinner assigns points to a pointy-top hexagonal grid in lat/lon
// space. The paper's Fig. 18 renders per-hex minimum RTT across the
// continental U.S.; we reproduce the binning so benches can print the
// same series.
type HexBinner struct {
	// SizeDeg is the hexagon circumradius in degrees of latitude.
	SizeDeg float64
}

// HexCoord identifies a hexagon with axial coordinates.
type HexCoord struct {
	Q int
	R int
}

// Bin returns the hexagon containing p.
func (h HexBinner) Bin(p Point) HexCoord {
	size := h.SizeDeg
	if size <= 0 {
		size = 1.5
	}
	// Axial coordinates for a pointy-top hex grid; longitude is scaled by
	// cos(latitude) so that hexes stay roughly equal-area across the U.S.
	x := p.Lon * math.Cos(39*math.Pi/180)
	y := p.Lat
	q := (math.Sqrt(3)/3*x - 1.0/3*y) / size
	r := (2.0 / 3 * y) / size
	return roundHex(q, r)
}

// Center returns the approximate lat/lon center of a hexagon.
func (h HexBinner) Center(c HexCoord) Point {
	size := h.SizeDeg
	if size <= 0 {
		size = 1.5
	}
	x := size * (math.Sqrt(3)*float64(c.Q) + math.Sqrt(3)/2*float64(c.R))
	y := size * (3.0 / 2 * float64(c.R))
	return Point{Lat: y, Lon: x / math.Cos(39*math.Pi/180)}
}

func roundHex(q, r float64) HexCoord {
	// Cube-coordinate rounding.
	x, z := q, r
	y := -x - z
	rx, ry, rz := math.Round(x), math.Round(y), math.Round(z)
	dx, dy, dz := math.Abs(rx-x), math.Abs(ry-y), math.Abs(rz-z)
	switch {
	case dx > dy && dx > dz:
		rx = -ry - rz
	case dy > dz:
		// y is derived; nothing to fix for axial output.
	default:
		rz = -rx - ry
	}
	return HexCoord{Q: int(rx), R: int(rz)}
}

// HexAggregate collects a value per hexagon keeping the minimum, which is
// the statistic Fig. 18 maps (minimum RTT per location).
type HexAggregate struct {
	binner HexBinner
	min    map[HexCoord]float64
}

// NewHexAggregate returns an aggregator over hexes of the given size.
func NewHexAggregate(sizeDeg float64) *HexAggregate {
	return &HexAggregate{binner: HexBinner{SizeDeg: sizeDeg}, min: map[HexCoord]float64{}}
}

// Add records a sample value observed at p.
func (a *HexAggregate) Add(p Point, value float64) {
	c := a.binner.Bin(p)
	if v, ok := a.min[c]; !ok || value < v {
		a.min[c] = value
	}
}

// HexValue is one populated hexagon and its aggregated value.
type HexValue struct {
	Coord  HexCoord
	Center Point
	Value  float64
}

// Results returns the populated hexes sorted west-to-east then
// south-to-north, so output is deterministic.
func (a *HexAggregate) Results() []HexValue {
	out := make([]HexValue, 0, len(a.min))
	for c, v := range a.min {
		out = append(out, HexValue{Coord: c, Center: a.binner.Center(c), Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Center.Lon != out[j].Center.Lon {
			return out[i].Center.Lon < out[j].Center.Lon
		}
		return out[i].Center.Lat < out[j].Center.Lat
	})
	return out
}

// Len reports how many hexes hold at least one sample.
func (a *HexAggregate) Len() int { return len(a.min) }
