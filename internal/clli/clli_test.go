package clli

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestPlaceCodePaperExamples(t *testing.T) {
	// These codes appear verbatim in the paper's traceroute figures.
	tests := map[string]string{
		"San Diego":   "SNDG",
		"Nashville":   "NSVL",
		"Santa Cruz":  "SNTC",
		"Los Angeles": "LSAN",
	}
	for name, want := range tests {
		if got := PlaceCode(name); got != want {
			t.Errorf("PlaceCode(%s) = %s, want %s", name, got, want)
		}
	}
}

func TestPlaceCodeDerived(t *testing.T) {
	tests := map[string]string{
		"Beaverton": "BVRT",
		"Troutdale": "TRTD",
		"Ft X":      "FTXX", // padding
		"Ada":       "ADXX",
	}
	for name, want := range tests {
		if got := PlaceCode(name); got != want {
			t.Errorf("PlaceCode(%s) = %s, want %s", name, got, want)
		}
	}
}

func TestPlaceCodeShape(t *testing.T) {
	f := func(s string) bool {
		code := PlaceCode(s)
		if len(code) != 4 {
			return false
		}
		for _, r := range code {
			if r < 'A' || r > 'Z' {
				return false
			}
		}
		return code == PlaceCode(s) // deterministic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCityCodeAndBuilding(t *testing.T) {
	sd := geo.MustByName("San Diego")
	if got := CityCode(sd); got != "SNDGCA" {
		t.Errorf("CityCode(San Diego) = %s, want SNDGCA", got)
	}
	if got := Building(sd, 2); got != "SNDGCA02" {
		t.Errorf("Building(San Diego, 2) = %s, want SNDGCA02 (the paper's tandem office)", got)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	cities := geo.All()
	r := NewRegistry(cities)
	if r.Len() < len(cities) {
		t.Fatalf("registry has %d codes for %d cities", r.Len(), len(cities))
	}
	for _, c := range cities {
		code := r.CodeFor(c)
		if code == "" {
			t.Fatalf("no code for %s, %s", c.Name, c.State)
		}
		got, ok := r.Resolve(code)
		if !ok {
			t.Fatalf("Resolve(%s) failed", code)
		}
		if got.Name != c.Name || got.State != c.State {
			t.Errorf("Resolve(%s) = %s,%s want %s,%s", code, got.Name, got.State, c.Name, c.State)
		}
	}
}

func TestRegistryCollisions(t *testing.T) {
	// Springfield MO, IL, MA collide on place code; all must resolve.
	a := geo.MustByName("Springfield, MO")
	b := geo.MustByName("Springfield, IL")
	c := geo.MustByName("Springfield, MA")
	_ = a
	r := NewRegistry([]geo.City{a, b, c})
	codes := map[string]bool{}
	for _, city := range []geo.City{a, b, c} {
		code := r.CodeFor(city)
		if code == "" {
			t.Fatalf("no code for Springfield, %s", city.State)
		}
		if codes[code] {
			t.Errorf("duplicate code %s", code)
		}
		codes[code] = true
	}
	// MO and IL differ by state so only same-state collisions matter;
	// force one by registering the same city name twice in one state.
	dup := geo.City{Name: "Sprungfold", State: "MO", Point: a.Point}
	dup2 := geo.City{Name: "Sprangfald", State: "MO", Point: a.Point}
	r2 := NewRegistry([]geo.City{dup, dup2})
	if r2.CodeFor(dup) == r2.CodeFor(dup2) {
		t.Error("same-state collision not disambiguated")
	}
}

func TestResolveCaseAndLength(t *testing.T) {
	r := NewRegistry([]geo.City{geo.MustByName("San Diego")})
	if _, ok := r.Resolve("sndgca"); !ok {
		t.Error("lower-case resolve failed")
	}
	if _, ok := r.Resolve("SNDGCA02"); !ok {
		t.Error("8-char building code resolve failed")
	}
	if _, ok := r.Resolve("SND"); ok {
		t.Error("short code should not resolve")
	}
	if _, ok := r.Resolve("XXXXXX"); ok {
		t.Error("unknown code should not resolve")
	}
}

func TestAddReturnsResolvableCode(t *testing.T) {
	r := NewRegistry(nil)
	c := geo.City{Name: "Faketown", State: "CA", Point: geo.Point{Lat: 33, Lon: -117}}
	code := r.Add(c)
	if len(code) != 6 || !strings.HasSuffix(code, "CA") {
		t.Errorf("Add returned %q", code)
	}
	got, ok := r.Resolve(code)
	if !ok || got.Name != "Faketown" {
		t.Errorf("Resolve(%s) = %+v, %v", code, got, ok)
	}
}
