// Package clli constructs and resolves CLLI-style location codes.
//
// Real-world CLLI (Common Language Location Identifier) codes identify
// telephone-plant buildings with a 4-character place abbreviation, a
// 2-character state code, and a 2-character building suffix (e.g.
// SNDGCA02 is a San Diego, CA tandem office). Charter embeds the first
// six or eight characters in router hostnames (agg1.sndhcaax01r.socal.
// rr.com); AT&T embeds six-character city codes in lightspeed DSLAM
// hostnames (sndgca, nsvltn).
//
// This package produces deterministic codes for the simulator's cities
// and provides a Registry so inference code can geolocate a code the way
// the paper geolocates CLLIs — without access to the generator's ground
// truth objects.
package clli

import (
	"fmt"
	"strings"

	"repro/internal/geo"
)

// knownPlaceCodes pins the abbreviations for cities whose real CLLI
// place codes appear in the paper, so simulated hostnames match the
// paper's examples character-for-character.
var knownPlaceCodes = map[string]string{
	"San Diego":     "SNDG",
	"Los Angeles":   "LSAN",
	"Nashville":     "NSVL",
	"Santa Cruz":    "SNTC",
	"Vista":         "VIST",
	"Azusa":         "AZUS",
	"San Francisco": "SNFC",
	"New York":      "NYCM",
	"Chicago":       "CHCG",
	"Dallas":        "DLLS",
	"Houston":       "HSTN",
	"Atlanta":       "ATLN",
	"Seattle":       "STTL",
	"Denver":        "DNVR",
	"Miami":         "MIAM",
	"Boston":        "BSTN",
	"Phoenix":       "PHNX",
	"Charlotte":     "CHRL",
}

// PlaceCode derives a 4-letter place abbreviation from a city name. When
// the city has a pinned real-world code it is used; otherwise the code is
// the first letter of each word followed by the word's consonants, padded
// with 'X'. The derivation is deterministic so generator and parser agree.
func PlaceCode(name string) string {
	if c, ok := knownPlaceCodes[name]; ok {
		return c
	}
	var b strings.Builder
	words := strings.FieldsFunc(strings.ToUpper(name), func(r rune) bool {
		return r < 'A' || r > 'Z'
	})
	for _, w := range words {
		for i, r := range w {
			if b.Len() == 4 {
				break
			}
			if i == 0 || !isVowel(r) {
				b.WriteRune(r)
			}
		}
	}
	for b.Len() < 4 {
		b.WriteByte('X')
	}
	return b.String()[:4]
}

func isVowel(r rune) bool {
	switch r {
	case 'A', 'E', 'I', 'O', 'U':
		return true
	}
	return false
}

// CityCode returns the 6-character place+state code for a city, e.g.
// "SNDGCA" for San Diego, CA.
func CityCode(c geo.City) string {
	return PlaceCode(c.Name) + strings.ToUpper(c.State)
}

// Building returns the full 8-character CLLI for the nth building in a
// city, e.g. Building(city, 2) = "SNDGCA02".
func Building(c geo.City, n int) string {
	return fmt.Sprintf("%s%02d", CityCode(c), n%100)
}

// Registry resolves 6-character city codes back to locations. Inference
// code populates a Registry from public knowledge (the list of cities in
// a coverage area) rather than from generator internals, mirroring how
// the paper geolocates CLLIs with public databases.
type Registry struct {
	byCode map[string]geo.City
	// byCity is the reverse index (Name|State -> assigned code) so
	// CodeFor stays O(1) even when collision fallbacks assigned a
	// re-coded variant; scaled topologies call CodeFor once per CO.
	byCity map[string]string
}

func cityKey(c geo.City) string { return c.Name + "|" + c.State }

// NewRegistry builds a registry over the given cities. When two cities
// collide on the same code, the first registration wins and later ones
// are re-coded by replacing the 4th character with a distinguishing
// letter — then, once those 26 variants are spoken for, the 3rd and 4th
// characters together (676 variants per prefix/state, enough for the
// scaled topologies' town counts) — matching how real CLLI assignments
// avoid collisions.
func NewRegistry(cities []geo.City) *Registry {
	r := &Registry{
		byCode: make(map[string]geo.City, len(cities)),
		byCity: make(map[string]string, len(cities)),
	}
	for _, c := range cities {
		r.register(c)
	}
	return r
}

func (r *Registry) register(c geo.City) string {
	if code, ok := r.byCity[cityKey(c)]; ok {
		return code
	}
	claim := func(cand string) string {
		r.byCode[cand] = c
		r.byCity[cityKey(c)] = cand
		return cand
	}
	code := CityCode(c)
	if _, taken := r.byCode[code]; !taken {
		return claim(code)
	}
	for alt := 'A'; alt <= 'Z'; alt++ {
		cand := code[:3] + string(alt) + code[4:]
		if _, taken := r.byCode[cand]; !taken {
			return claim(cand)
		}
	}
	for alt3 := 'A'; alt3 <= 'Z'; alt3++ {
		for alt4 := 'A'; alt4 <= 'Z'; alt4++ {
			cand := code[:2] + string(alt3) + string(alt4) + code[4:]
			if _, taken := r.byCode[cand]; !taken {
				return claim(cand)
			}
		}
	}
	// 676 collisions on a 2-letter prefix within one state never happens
	// even for 10x-scaled town databases.
	panic("clli: code space exhausted for " + c.Name)
}

// Add registers one more city and returns the code assigned to it.
func (r *Registry) Add(c geo.City) string { return r.register(c) }

// CodeFor returns the registered code for a city, or "" when the city was
// never registered.
func (r *Registry) CodeFor(c geo.City) string {
	return r.byCity[cityKey(c)]
}

// Resolve maps a 6- or 8-character code (case-insensitive) to its city.
func (r *Registry) Resolve(code string) (geo.City, bool) {
	if len(code) < 6 {
		return geo.City{}, false
	}
	c, ok := r.byCode[strings.ToUpper(code[:6])]
	return c, ok
}

// Len reports how many codes are registered.
func (r *Registry) Len() int { return len(r.byCode) }
