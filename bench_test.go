// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation. Each benchmark prints the measured rows
// next to the paper's numbers; absolute values come from the simulated
// substrate, so the claim under reproduction is the shape (who wins, by
// roughly what factor, where the crossovers fall).
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cloudlat"
	"repro/internal/comap"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/mobilemap"
	"repro/internal/topogen"
	"repro/internal/vclock"
)

// Study fixtures are built once and shared; building them IS the
// measurement campaign, so the per-bench measured body is the analysis
// step that regenerates the artifact.
var (
	cableOnce sync.Once
	cableSt   *core.CableStudy

	attOnce sync.Once
	attSt   *core.ATTStudy

	mobileOnce sync.Once
	mobileSt   *core.MobileStudy
)

func cableStudy() *core.CableStudy {
	cableOnce.Do(func() {
		cableSt = core.NewCableStudy(7)
		cableSt.Result("comcast")
		cableSt.Result("charter")
	})
	return cableSt
}

func attStudy() *core.ATTStudy {
	attOnce.Do(func() {
		attSt = core.NewATTStudy(21)
		attSt.Result()
	})
	return attSt
}

func mobileStudy() *core.MobileStudy {
	mobileOnce.Do(func() {
		mobileSt = core.NewMobileStudy(51)
		for _, c := range core.CarrierNames {
			mobileSt.Analysis(c)
		}
	})
	return mobileSt
}

// BenchmarkTable1_AggregationTypes regenerates Table 1: regional
// aggregation archetypes per operator.
// Paper: Comcast 5 single / 11 two / 12 multi; Charter 0 / 0 / 6.
func BenchmarkTable1_AggregationTypes(b *testing.B) {
	st := cableStudy()
	var tbl map[string]map[comap.AggType]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = st.Table1()
	}
	b.StopTimer()
	for _, isp := range []string{"comcast", "charter"} {
		fmt.Printf("# Table1 %-8s single=%d two=%d multi=%d (paper: comcast 5/11/12, charter 0/0/6)\n",
			isp, tbl[isp][comap.AggSingle], tbl[isp][comap.AggTwo], tbl[isp][comap.AggMulti])
	}
}

// BenchmarkFigure7_RegionSizeCDF regenerates Fig. 7: CDFs of COs and
// AggCOs per region. Paper: Charter regions are several times larger.
func BenchmarkFigure7_RegionSizeCDF(b *testing.B) {
	st := cableStudy()
	var cos, aggs map[string][]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cos, aggs = st.Figure7()
	}
	b.StopTimer()
	for _, isp := range []string{"comcast", "charter"} {
		c := newCDF(cos[isp])
		a := newCDF(aggs[isp])
		fmt.Printf("# Fig7 %-8s COs/region min=%.0f med=%.0f max=%.0f | AggCOs/region med=%.0f max=%.0f\n",
			isp, c.Min(), c.Median(), c.Max(), a.Median(), a.Max())
	}
	fmt.Printf("# Fig7 paper: comcast max ~100 COs and ~10 AggCOs; charter max ~240 COs and ~30 AggCOs\n")
}

// BenchmarkTable3_MappingRefinement regenerates Table 3: how alias
// resolution and point-to-point subnets refined the IP-to-CO mapping.
// Paper: alias changed 2.35%/1.10%, added 2.76%/0.80%, removed
// 0.86%/0.20%; subnets changed 0.04%/0.05%, added 1.27%/0.48%.
func BenchmarkTable3_MappingRefinement(b *testing.B) {
	st := cableStudy()
	b.ResetTimer()
	var stats comap.MappingStats
	for i := 0; i < b.N; i++ {
		stats = st.Table3("comcast")
	}
	b.StopTimer()
	for _, isp := range []string{"comcast", "charter"} {
		s := st.Table3(isp)
		base := float64(s.Initial)
		fmt.Printf("# Table3 %-8s initial=%d alias: changed=%.2f%% added=%.2f%% removed=%.2f%% | subnet: changed=%.2f%% added=%.2f%% | final=%d\n",
			isp, s.Initial,
			100*float64(s.AliasChanged)/base, 100*float64(s.AliasAdded)/base, 100*float64(s.AliasRemoved)/base,
			100*float64(s.SubnetChanged)/base, 100*float64(s.SubnetAdded)/base, s.Final)
	}
	_ = stats
}

// BenchmarkTable4_AdjacencyPruning regenerates Table 4: adjacency
// pruning by category. Paper: backbone 26.07%/11.67% of IP adjacencies,
// cross-region 18.78%/2.37% of CO adjacencies (Comcast loses more to
// stale rDNS), single-trace ~1%.
func BenchmarkTable4_AdjacencyPruning(b *testing.B) {
	st := cableStudy()
	var p comap.PruneStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p = st.Table4("comcast")
	}
	b.StopTimer()
	for _, isp := range []string{"comcast", "charter"} {
		s := st.Table4(isp)
		fmt.Printf("# Table4 %-8s IPadj=%d COadj=%d | backbone %.2f%%/%.2f%% | cross-region %.2f%%/%.2f%% | single %.2f%%/%.2f%% | mpls CO removed=%d\n",
			isp, s.InitialIPAdjs, s.InitialCOAdjs,
			100*float64(s.BackboneIPAdjs)/float64(s.InitialIPAdjs), 100*float64(s.BackboneCOAdjs)/float64(s.InitialCOAdjs),
			100*float64(s.CrossRegionIPAdjs)/float64(s.InitialIPAdjs), 100*float64(s.CrossRegionCOAdjs)/float64(s.InitialCOAdjs),
			100*float64(s.SingleIPAdjs)/float64(s.InitialIPAdjs), 100*float64(s.SingleCOAdjs)/float64(s.InitialCOAdjs),
			s.MPLSCOAdjs)
	}
	_ = p
}

// BenchmarkSection51_DirectTargeting quantifies §5.1's claim that
// rDNS-targeted traceroutes reveal several times more CO
// interconnections than the /24 sweep (paper: 5.3x Comcast, 2.6x
// Charter).
func BenchmarkSection51_DirectTargeting(b *testing.B) {
	st := cableStudy()
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gain = st.DirectTargetingGain("comcast")
	}
	b.StopTimer()
	b.ReportMetric(gain, "x-gain-comcast")
	for _, isp := range []string{"comcast", "charter"} {
		fmt.Printf("# §5.1 %-8s direct-targeting gain = %.1fx (paper: comcast 5.3x, charter 2.6x)\n",
			isp, st.DirectTargetingGain(isp))
	}
}

// BenchmarkSection525_EntryPoints regenerates the §5.2.5 entry-point
// findings. Paper: 57 Comcast backbone entries, all but three regions
// with >= 2; Central California also enters via San Francisco; no
// Charter inter-region entries.
func BenchmarkSection525_EntryPoints(b *testing.B) {
	st := cableStudy()
	var e core.EntrySummary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e = st.Entries("comcast")
	}
	b.StopTimer()
	cha := st.Entries("charter")
	fmt.Printf("# §5.2.5 comcast backbone-entry pairs=%d regions<2=%d inter-region pairs=%d (paper: 57, 3, >=2 real feeders)\n",
		e.BackboneEntryPairs, e.RegionsUnderTwo, e.InterRegionPairs)
	fmt.Printf("# §5.2.5 charter  backbone-entry pairs=%d inter-region=%d (paper: all regions >=2, 0 inter-region)\n",
		cha.BackboneEntryPairs, cha.InterRegionEntries)
}

// BenchmarkSectionB4_Redundancy regenerates Appendix B.4. Paper: 11.4%
// of Comcast vs 37.7% of Charter EdgeCOs have one upstream (29.0%
// excluding the southeast); 33.7%/42.2% of those hang off another
// EdgeCO; 7.7x EdgeCOs per AggCO overall.
func BenchmarkSectionB4_Redundancy(b *testing.B) {
	st := cableStudy()
	var com core.Redundancy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		com = st.RedundancyStats("comcast")
	}
	b.StopTimer()
	cha := st.RedundancyStats("charter")
	exSE := st.RedundancyStats("charter", "southeast")
	fmt.Printf("# B.4 comcast single-upstream=%.1f%% via-edge=%.1f%% (paper 11.4%% / 33.7%%)\n",
		100*com.SingleUpstreamFrac, 100*com.SingleViaEdgeFrac)
	fmt.Printf("# B.4 charter single-upstream=%.1f%% via-edge=%.1f%% exSE=%.1f%% (paper 37.7%% / 42.2%% / 29.0%%)\n",
		100*cha.SingleUpstreamFrac, 100*cha.SingleViaEdgeFrac, 100*exSE.SingleUpstreamFrac)
	ratio := float64(com.EdgeCOs+cha.EdgeCOs) / float64(com.AggCOs+cha.AggCOs)
	fmt.Printf("# §5.5 EdgeCO:AggCO ratio = %.1fx (paper 7.7x)\n", ratio)
	b.ReportMetric(ratio, "edge-per-agg")
}

// BenchmarkFigure9_NortheastRTT regenerates Fig. 9: median minimum RTT
// from each cloud's closest region to MA/CT/NH/VT EdgeCOs. Paper:
// Connecticut is worst from all three clouds (~3.5-4 ms penalty)
// despite being geographically closest.
func BenchmarkFigure9_NortheastRTT(b *testing.B) {
	st := cableStudy()
	var rows []cloudlat.Fig9Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = st.Figure9(30)
	}
	b.StopTimer()
	for _, r := range rows {
		fmt.Printf("# Fig9 %-7s %-10s %s median=%.1fms (n=%d)\n", r.Provider, r.Region, r.State, r.MedianMs, r.Targets)
	}
	fmt.Printf("# Fig9 paper: CT 16-20ms > MA/NH/VT 11-16ms from every cloud\n")
}

// BenchmarkFigure10_LatencyCDF regenerates Fig. 10. Paper: >80% of
// EdgeCOs are beyond 5 ms RTT of the nearest cloud VM, yet >80% are
// within 5 ms of their AggCO.
func BenchmarkFigure10_LatencyCDF(b *testing.B) {
	st := cableStudy()
	var fig = st.Figure10(20, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = st.Figure10(20, 400)
	}
	b.StopTimer()
	pts := []float64{5, 10, 15, 20, 25, 30, 40, 55}
	fmt.Printf("# Fig10a cloud->edge CDF: %s\n", fig.CloudToEdge.Series(pts))
	fmt.Printf("# Fig10b agg->edge   CDF: %s\n", fig.AggToEdge.Series(pts))
	fmt.Printf("# Fig10 paper: cloud->edge at 5ms < 0.2; agg->edge at 5ms > 0.8\n")
	b.ReportMetric(fig.AggToEdge.At(5), "agg-within-5ms")
	b.ReportMetric(fig.CloudToEdge.At(5), "cloud-within-5ms")
}

// BenchmarkFigure13_ATTSanDiego regenerates Fig. 13: the AT&T San Diego
// router- and CO-level topology. Paper: 2 backbone routers, 4 agg
// routers, 84 EdgeCO routers forming 42 dual-router EdgeCOs, one
// BackboneCO with a full mesh to the aggregation layer.
func BenchmarkFigure13_ATTSanDiego(b *testing.B) {
	st := attStudy()
	var fig core.Fig13Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = st.Figure13()
	}
	b.StopTimer()
	fmt.Printf("# Fig13 bb-routers=%d agg-routers=%d edge-routers=%d edgeCOs=%d (2-router=%d, dual-agg=%d) bbCOs=%d mesh=%v\n",
		fig.BackboneRouters, fig.AggRouters, fig.EdgeRouters, fig.EdgeCOs,
		fig.TwoRouterEdges, fig.DualHomedEdges, fig.BackboneCOs, fig.FullMesh)
	fmt.Printf("# Fig13 paper: 2 / 4 / 84 routers; 42 EdgeCOs; 1 BackboneCO, full mesh\n")
}

// BenchmarkTable2_ATTEdgeLatency regenerates Table 2: minimum RTT from
// a Los Angeles cloud VM to San Diego EdgeCO devices. Paper: 3-10 ms
// with a 4.3 ms average and two distant offices above 2x.
func BenchmarkTable2_ATTEdgeLatency(b *testing.B) {
	st := attStudy()
	var outliers int
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outliers, mean = st.LatencyOutliers(50)
	}
	b.StopTimer()
	fmt.Printf("# Table2 histogram: %s\n", st.Table2(50))
	fmt.Printf("# Table2 mean=%.1fms outliers>2x=%d (paper: 4.3ms avg, 2 outliers at 9-10ms)\n", mean, outliers)
	b.ReportMetric(mean, "mean-ms")
}

// BenchmarkTable56_DPRPrefixes regenerates Tables 5 and 6: DPR reveals
// the MPLS-hidden agg layer and the CO router /24 inventory. Paper: 6
// EdgeCO /24s and 1 AggCO /24 in San Diego.
func BenchmarkTable56_DPRPrefixes(b *testing.B) {
	st := attStudy()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		edge, agg := st.Table6()
		n = len(edge) + len(agg)
	}
	b.StopTimer()
	edge, agg := st.Table6()
	fmt.Printf("# Table6 edge /24s (%d):", len(edge))
	for _, p := range edge {
		fmt.Printf(" %s", p)
	}
	fmt.Printf("\n# Table6 agg /24s (%d):", len(agg))
	for _, p := range agg {
		fmt.Printf(" %s", p)
	}
	fmt.Printf("\n# Table6 paper: 6 edge /24s + 1 agg /24\n")
	_ = n
}

// BenchmarkSection61_McTraceroute regenerates §6.1's vantage-point
// comparison. Paper: the 10 Atlas/Ark probes revealed only half the IP
// paths the 23 restaurant hotspots revealed.
func BenchmarkSection61_McTraceroute(b *testing.B) {
	st := attStudy()
	var ark, mc int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ark, mc = st.McComparison()
	}
	b.StopTimer()
	fmt.Printf("# §6.1 ark/atlas paths=%d mctraceroute paths=%d ratio=%.2f (paper ~0.5)\n",
		ark, mc, float64(ark)/float64(mc))
	b.ReportMetric(float64(ark)/float64(mc), "ark-to-mc-ratio")
}

// BenchmarkFigure14_Energy regenerates Fig. 14: per-round energy of
// stock versus ShipTraceroute scamper. Paper: 8.6 -> 5.3 mAh (38%
// saving), ~12 days of hourly rounds on one charge.
func BenchmarkFigure14_Energy(b *testing.B) {
	st := mobileStudy()
	var rows []core.Fig14Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = st.Figure14()
	}
	b.StopTimer()
	for _, r := range rows {
		fmt.Printf("# Fig14 %-28s active=%v energy=%.1fmAh battery=%.1f days\n",
			r.Mode, r.Active.Round(time.Second), r.EnergymAh, r.BatteryDays)
	}
	saving := 1 - rows[1].EnergymAh/rows[0].EnergymAh
	fmt.Printf("# Fig14 saving=%.0f%% (paper 38%%; paper battery ~12 days)\n", 100*saving)
	b.ReportMetric(100*saving, "%saving")
}

// BenchmarkFigure15_Coverage regenerates Fig. 15: 12 shipments cover
// 40 states; per-carrier round success 75-84%.
func BenchmarkFigure15_Coverage(b *testing.B) {
	st := mobileStudy()
	var states []string
	var rates map[string]float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		states, rates = st.Figure15()
	}
	b.StopTimer()
	fmt.Printf("# Fig15 states=%d (paper 40)\n", len(states))
	for _, c := range core.CarrierNames {
		fmt.Printf("# Fig15 %-10s success=%.0f%% (paper 75-84%%)\n", c, 100*rates[c])
	}
	b.ReportMetric(float64(len(states)), "states")
}

// BenchmarkFigure16_IPv6Fields regenerates Fig. 16: the inferred IPv6
// address fields per carrier.
func BenchmarkFigure16_IPv6Fields(b *testing.B) {
	st := mobileStudy()
	var a *mobilemap.Analysis
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a = mobilemap.Analyze(st.Rounds("att-mobile"), st.Scenario.DNS)
	}
	b.StopTimer()
	_ = a
	for _, c := range core.CarrierNames {
		an := st.Analysis(c)
		fmt.Printf("# Fig16 %-10s user=/%d region=%v pgw=%v router-base=%v router-field=%v levels=%d\n",
			c, an.UserPrefixLen, an.RegionField, an.PGWField, an.RouterBase, an.RouterField, len(an.GeoLevels))
	}
	fmt.Printf("# Fig16 paper: att region bits 32-39 + pgw nibble; verizon region bits 24-39 + pgw 40-43, router 2001:4888 bits 64-75; tmobile pgw bits 32-39, no region\n")
}

// BenchmarkFigure17_MobileTopologies regenerates Fig. 17: the carrier
// architecture classification.
func BenchmarkFigure17_MobileTopologies(b *testing.B) {
	st := mobileStudy()
	var arch mobilemap.Arch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arch = st.Analysis("tmobile").Arch
	}
	b.StopTimer()
	_ = arch
	for _, c := range core.CarrierNames {
		a := st.Analysis(c)
		fmt.Printf("# Fig17 %-10s arch=%-15s providers=%v\n", c, a.Arch, a.Providers)
	}
	fmt.Printf("# Fig17 paper: att single-edge, verizon multi-edge, tmobile multi-backbone\n")
}

// BenchmarkFigure18_LatencyMap regenerates Fig. 18: per-hex minimum RTT
// to a San Diego server. Paper: AT&T's interior (MT/ND) is darkest;
// Verizon and T-Mobile are lower overall.
func BenchmarkFigure18_LatencyMap(b *testing.B) {
	st := mobileStudy()
	var hexes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hexes = len(st.Figure18("att-mobile"))
	}
	b.StopTimer()
	for _, c := range core.CarrierNames {
		hx := st.Figure18(c)
		cdf := newCDFHex(hx)
		fmt.Printf("# Fig18 %-10s hexes=%d minRTT med=%.0fms p90=%.0fms max=%.0fms\n",
			c, len(hx), cdf.Median(), cdf.Quantile(0.9), cdf.Max())
	}
	fmt.Printf("# Fig18 paper: att darkest interior (up to ~200ms); verizon/tmobile lower\n")
	_ = hexes
}

// BenchmarkTable7_ATTPGWs regenerates Table 7: inferred PGW counts per
// AT&T mobile region.
func BenchmarkTable7_ATTPGWs(b *testing.B) {
	st := mobileStudy()
	var rows []core.PGWRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = st.PGWTable("att-mobile")
	}
	b.StopTimer()
	printPGWRows("Table7", rows)
}

// BenchmarkTable8_VerizonPGWs regenerates Table 8: inferred PGW counts
// per Verizon wireless region.
func BenchmarkTable8_VerizonPGWs(b *testing.B) {
	st := mobileStudy()
	var rows []core.PGWRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = st.PGWTable("verizon")
	}
	b.StopTimer()
	printPGWRows("Table8", rows)
}

func printPGWRows(label string, rows []core.PGWRow) {
	exact := 0
	fmt.Printf("# %s regions=%d:", label, len(rows))
	for _, r := range rows {
		fmt.Printf(" %s=%d/%d", r.Region, r.Inferred, r.Truth)
		if r.Inferred == r.Truth {
			exact++
		}
	}
	fmt.Printf("\n# %s exact matches: %d/%d visited regions\n", label, exact, len(rows))
}

// BenchmarkValidation_OperatorScore stands in for §5.4's operator
// interviews: precision/recall of the inferred CO graphs against the
// generator ground truth.
func BenchmarkValidation_OperatorScore(b *testing.B) {
	st := cableStudy()
	var f1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f1 = st.Score("comcast").MeanF1()
	}
	b.StopTimer()
	for _, isp := range []string{"comcast", "charter"} {
		sc := st.Score(isp)
		fmt.Printf("# Validation %-8s mean CO F1 = %.3f over %d regions\n", isp, sc.MeanF1(), len(sc.Regions))
	}
	b.ReportMetric(f1, "comcast-F1")
}

// --- Ablations: each disables one pipeline stage DESIGN.md calls out
// and reports the quality impact. ---

func ablationCampaign(st *core.CableStudy, mutate func(*comap.Campaign)) *comap.Result {
	c := &comap.Campaign{
		Net:       st.Scenario.Net,
		DNS:       st.Scenario.DNS,
		Clock:     vclock.New(st.Scenario.Epoch()),
		ISP:       "charter",
		VPs:       st.VPs,
		Announced: st.Charter.Announced,
	}
	mutate(c)
	return comap.Run(c)
}

// BenchmarkAblationNoMPLSPass disables the Vanaubel-style MPLS
// revelation; the false top-AggCO-to-EdgeCO edges of the MPLS region
// survive (the effect §5.1 reports for Maine).
func BenchmarkAblationNoMPLSPass(b *testing.B) {
	st := cableStudy()
	var with, without int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ablationCampaign(st, func(c *comap.Campaign) { c.SkipMPLSPass = true })
		without = len(res.Inference.Regions["maine"].Edges)
	}
	b.StopTimer()
	with = len(st.Result("charter").Inference.Regions["maine"].Edges)
	fmt.Printf("# Ablation no-MPLS: maine edges %d -> %d without the DPR pass (false tier1->edge links survive)\n", with, without)
	b.ReportMetric(float64(without-with), "extra-false-edges")
}

// BenchmarkAblationNoAlias disables alias resolution; unnamed and
// stale-named interfaces stay unmapped or wrong, shrinking the mapping
// (the Table 3 "added" rows vanish) and the edge set with it.
func BenchmarkAblationNoAlias(b *testing.B) {
	st := cableStudy()
	var mapped, edges int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ablationCampaign(st, func(c *comap.Campaign) { c.SkipAlias = true })
		mapped = res.Mapping.Stats.Final
		edges = totalEdges(res)
	}
	b.StopTimer()
	baseMapped := st.Result("charter").Mapping.Stats.Final
	baseEdges := totalEdges(st.Result("charter"))
	f1 := scoreResult(ablationCampaign(st, func(c *comap.Campaign) { c.SkipAlias = true }), st.Charter)
	fmt.Printf("# Ablation no-alias: charter mapped addrs %d -> %d, edges %d -> %d, F1 %.3f -> %.3f\n",
		baseMapped, mapped, baseEdges, edges, st.Score("charter").MeanF1(), f1)
	b.ReportMetric(float64(baseMapped-mapped), "mappings-lost")
}

// BenchmarkAblationNoDirectTargeting keeps only the /24 sweep; CO
// interconnection coverage collapses (the 2.6x of §5.1 in reverse).
func BenchmarkAblationNoDirectTargeting(b *testing.B) {
	st := cableStudy()
	var edges int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ablationCampaign(st, func(c *comap.Campaign) { c.SkipDirectTargeting = true })
		edges = totalEdges(res)
	}
	b.StopTimer()
	base := totalEdges(st.Result("charter"))
	fmt.Printf("# Ablation sweep-only: charter CO edges %d -> %d\n", base, edges)
	b.ReportMetric(float64(base-edges), "edges-lost")
}

func scoreResult(res *comap.Result, truth *topogen.ISP) float64 {
	var sum float64
	n := 0
	for name, g := range res.Inference.Regions {
		treg := truth.Regions[name]
		if treg == nil {
			continue
		}
		sum += scoreRegionF1(g, treg)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func scoreRegionF1(g *comap.RegionGraph, truth *topogen.Region) float64 {
	inferred := map[string]bool{}
	for _, node := range g.COs {
		inferred[node.Tag] = true
	}
	truthTags := map[string]bool{}
	for _, co := range truth.COs {
		truthTags[co.Tag] = true
	}
	tp, fp, fn := 0, 0, 0
	for t := range inferred {
		if truthTags[t] {
			tp++
		} else {
			fp++
		}
	}
	for t := range truthTags {
		if !inferred[t] {
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	p := float64(tp) / float64(tp+fp)
	r := float64(tp) / float64(tp+fn)
	return 2 * p * r / (p + r)
}

func totalEdges(res *comap.Result) int {
	n := 0
	for _, g := range res.Inference.Regions {
		n += len(g.Edges)
	}
	return n
}

// newCDF avoids importing metrics into the bench namespace twice.
func newCDF(xs []float64) *cdf { return &cdf{xs: sortedCopy(xs)} }

type cdf struct{ xs []float64 }

func sortedCopy(xs []float64) []float64 {
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	return c
}

func (c *cdf) Min() float64    { return c.xs[0] }
func (c *cdf) Max() float64    { return c.xs[len(c.xs)-1] }
func (c *cdf) Median() float64 { return c.xs[len(c.xs)/2] }
func (c *cdf) Quantile(q float64) float64 {
	i := int(q * float64(len(c.xs)-1))
	return c.xs[i]
}

func newCDFHex(hx []geo.HexValue) *cdf {
	var vals []float64
	for _, h := range hx {
		vals = append(vals, h.Value)
	}
	return newCDF(vals)
}

// --- §8 extensions: the paper's future-work directions, implemented. ---

// BenchmarkSection8_Resilience runs the failure-impact analysis over
// every inferred Comcast region: which offices are single points of
// failure (the Nashville scenario) and which regions survive entry
// loss.
func BenchmarkSection8_Resilience(b *testing.B) {
	st := cableStudy()
	var reports int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports = len(st.Resilience("comcast"))
	}
	b.StopTimer()
	survivable, spofs := 0, 0
	var worstFrac float64
	for _, rep := range st.Resilience("comcast") {
		if rep.EntryLossSurvivable() {
			survivable++
		}
		spofs += len(rep.SinglePointsOfFailure)
		if w, ok := rep.WorstCO(); ok && w.Frac() > worstFrac {
			worstFrac = w.Frac()
		}
	}
	fmt.Printf("# §8 resilience: %d/%d comcast regions survive any single entry loss; %d SPOF elements; worst CO failure strands %.0f%%\n",
		survivable, reports, spofs, 100*worstFrac)
	b.ReportMetric(float64(survivable), "survivable-regions")
}

// BenchmarkSection8_EdgePlacement solves the §5.5/§8 placement problem:
// cover 80% of EdgeCOs within 5 ms using greedy AggCO selection.
func BenchmarkSection8_EdgePlacement(b *testing.B) {
	st := cableStudy()
	var hosts, covered, total int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cmp := st.EdgePlacement(5, 0.8, 8, 400)
		hosts, covered, total = len(cmp.AggPlacement.Hosts), cmp.AggPlacement.Covered, cmp.AggPlacement.Total
	}
	b.StopTimer()
	fmt.Printf("# §8 edge placement: %d AggCO hosts cover %d/%d EdgeCOs within 5ms (vs %d EdgeCO deployments)\n",
		hosts, covered, total, total)
	b.ReportMetric(float64(total)/float64(hosts), "edges-per-host")
}

// BenchmarkAblationPauseAtRest quantifies the §8 accelerometer-pause
// tradeoff: journey energy saved versus stationary re-registration
// samples (and hence Table 7 accuracy) lost.
func BenchmarkAblationPauseAtRest(b *testing.B) {
	st := mobileStudy()
	var r core.PauseAblationResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = st.RunPauseAblation()
	}
	b.StopTimer()
	fmt.Printf("# §8 pause-at-rest: energy %.0f -> %.0f mAh (%.0f%% saved); rounds %d -> %d; PGW-exact regions %d -> %d of %d\n",
		r.NormalEnergymAh, r.PausedEnergymAh, 100*(1-r.PausedEnergymAh/r.NormalEnergymAh),
		r.NormalRounds, r.PausedRounds, r.NormalPGWExact, r.PausedPGWExact, r.Regions)
	b.ReportMetric(r.NormalEnergymAh-r.PausedEnergymAh, "mAh-saved")
}

// BenchmarkNoiseRobustness sweeps the stale-rDNS rate on a reduced
// two-region operator and reports CO-recovery F1 at each level — the
// paper's claim that the heuristics produce "surprisingly accurate maps
// in spite of considerable noise in our input signals".
func BenchmarkNoiseRobustness(b *testing.B) {
	levels := []float64{0.5, 1, 3, 6}
	run := func(mult float64) float64 {
		s := topogen.NewScenario(13)
		p := topogen.CharterProfile()
		p.StaleBothProb *= mult
		p.StaleSnapProb *= mult
		p.UnnamedProb *= mult
		if p.UnnamedProb > 0.5 {
			p.UnnamedProb = 0.5
		}
		p.Regions = p.Regions[:2] // socal + texas keep runtime bounded
		isp := s.BuildCable(p)
		vps := s.StandardVPs(isp)
		c := &comap.Campaign{
			Net: s.Net, DNS: s.DNS, Clock: vclock.New(s.Epoch()),
			ISP: "charter", VPs: vps, Announced: isp.Announced,
		}
		return scoreResult(comap.Run(c), isp)
	}
	var f1s []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f1s = f1s[:0]
		for _, mult := range levels {
			f1s = append(f1s, run(mult))
		}
	}
	b.StopTimer()
	base := topogen.CharterProfile()
	for i, mult := range levels {
		fmt.Printf("# noise x%.1f (stale %.1f%%+%.1f%%, unnamed %.0f%%): charter CO F1 = %.3f\n",
			mult, 100*base.StaleBothProb*mult, 100*base.StaleSnapProb*mult,
			100*minF(base.UnnamedProb*mult, 0.5), f1s[i])
	}
	b.ReportMetric(f1s[0]-f1s[len(f1s)-1], "F1-degradation")
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// BenchmarkSection1_BuildingRedundancy quantifies the §1 claim that
// hostnames reveal building locations and building-level redundancy:
// Charter's 8-character CLLI tags expose multi-building cities and dual
// AggCO buildings within metros.
func BenchmarkSection1_BuildingRedundancy(b *testing.B) {
	st := cableStudy()
	var multi, redundant, cities int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multi, redundant, cities = 0, 0, 0
		for _, g := range st.Result("charter").Inference.Regions {
			stats := comap.BuildingRedundancy(g)
			cities += stats.Cities
			multi += stats.MultiBuilding
			redundant += stats.RedundantAggCities
		}
	}
	b.StopTimer()
	fmt.Printf("# §1 buildings: %d CLLI cities, %d with multiple buildings, %d with dual AggCO buildings\n",
		cities, multi, redundant)
	b.ReportMetric(float64(multi), "multi-building-cities")
}

// BenchmarkVPSweep varies the vantage-point count on a reduced cable
// operator. The result is a counterpoint to §6.1: for operators with
// rDNS and open probing, direct interface targeting compensates for few
// VPs and coverage stays nearly flat — VP diversity only dominates when
// the operator blocks external targeting (AT&T), which is what made
// McTraceroute necessary there (see BenchmarkSection61_McTraceroute).
func BenchmarkVPSweep(b *testing.B) {
	counts := []int{4, 10, 20, 40}
	type point struct {
		vps   int
		edges int
		f1    float64
	}
	run := func(nVPs int) point {
		s := topogen.NewScenario(17)
		p := topogen.CharterProfile()
		p.Regions = p.Regions[:2]
		isp := s.BuildCable(p)
		all := s.StandardVPs(isp)
		vps := all
		if nVPs < len(all) {
			vps = all[:nVPs]
		}
		c := &comap.Campaign{
			Net: s.Net, DNS: s.DNS, Clock: vclock.New(s.Epoch()),
			ISP: "charter", VPs: vps, Announced: isp.Announced,
		}
		res := comap.Run(c)
		return point{vps: len(vps), edges: totalEdges(res), f1: scoreResult(res, isp)}
	}
	var pts []point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = pts[:0]
		for _, n := range counts {
			pts = append(pts, run(n))
		}
	}
	b.StopTimer()
	for _, p := range pts {
		fmt.Printf("# VP sweep (cable): %2d VPs -> %d CO edges, CO F1 %.3f (flat: rDNS targeting compensates; contrast §6.1)\n", p.vps, p.edges, p.f1)
	}
	b.ReportMetric(float64(pts[len(pts)-1].edges-pts[0].edges), "edges-gained")
}
