// Cable study: the full §5 comparison of the Comcast- and Charter-like
// operators — Table 1 aggregation archetypes, Fig. 7 region sizes, and
// the Appendix B.4 redundancy contrast — with ground-truth validation.
//
//	go run ./examples/cable_study
package main

import (
	"fmt"

	"repro/internal/comap"
	"repro/internal/core"
	"repro/internal/metrics"
)

func main() {
	// WithParallelism fans probes across CPU cores; the tables are
	// byte-identical at any worker count.
	st := core.NewCableStudy(7, core.WithParallelism(4))
	fmt.Println("running both operator campaigns (a minute or two)...")
	st.Result("comcast")
	st.Result("charter")

	tbl := st.Table1()
	fmt.Println("\naggregation types per region (Table 1):")
	fmt.Printf("  %-8s %6s %6s %6s\n", "", "single", "two", "multi")
	for _, isp := range []string{"comcast", "charter"} {
		fmt.Printf("  %-8s %6d %6d %6d\n", isp,
			tbl[isp][comap.AggSingle], tbl[isp][comap.AggTwo], tbl[isp][comap.AggMulti])
	}

	cos, aggs := st.Figure7()
	fmt.Println("\nregion sizes (Fig. 7):")
	for _, isp := range []string{"comcast", "charter"} {
		c := metrics.NewCDF(cos[isp])
		a := metrics.NewCDF(aggs[isp])
		fmt.Printf("  %-8s %d regions; COs median=%.0f max=%.0f; AggCOs median=%.0f max=%.0f\n",
			isp, c.Len(), c.Median(), c.Max(), a.Median(), a.Max())
	}

	fmt.Println("\nredundancy to the EdgeCOs (Appendix B.4):")
	for _, isp := range []string{"comcast", "charter"} {
		r := st.RedundancyStats(isp)
		fmt.Printf("  %-8s single-upstream EdgeCOs: %.1f%% (of those, %.1f%% hang off another EdgeCO)\n",
			isp, 100*r.SingleUpstreamFrac, 100*r.SingleViaEdgeFrac)
	}
	exSE := st.RedundancyStats("charter", "southeast")
	fmt.Printf("  charter excluding the southeast anomaly: %.1f%%\n", 100*exSE.SingleUpstreamFrac)

	fmt.Println("\nvalidation against ground truth:")
	for _, isp := range []string{"comcast", "charter"} {
		fmt.Print(st.Score(isp))
	}
}
