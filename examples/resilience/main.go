// Resilience: the paper's §8 application directions on top of the
// inferred maps — which offices are single points of failure, which
// regions survive entry loss, and where edge compute should live.
//
//	go run ./examples/resilience
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	st := core.NewCableStudy(7)
	fmt.Println("mapping the comcast-like operator...")
	st.Result("comcast")

	fmt.Println("\nfailure impact per region (worst single office):")
	fragile := 0
	for _, rep := range st.Resilience("comcast") {
		worst, ok := rep.WorstCO()
		if !ok {
			continue
		}
		marker := ""
		if worst.Frac() > 0.5 {
			marker = "  <- single point of failure"
			fragile++
		}
		fmt.Printf("  %-14s worst CO strands %3.0f%% of EdgeCOs; survives entry loss: %-5v%s\n",
			rep.Region, 100*worst.Frac(), rep.EntryLossSurvivable(), marker)
	}
	fmt.Printf("\n%d regions have a Nashville-style single point of failure.\n", fragile)

	fmt.Println("\nedge-compute placement (cover 80% of EdgeCOs within 5 ms):")
	st.Result("charter")
	cmp := st.EdgePlacement(5, 0.8, 10, 400)
	p := cmp.AggPlacement
	fmt.Printf("  %d AggCO host sites cover %d of %d EdgeCOs (%.0f%%)\n",
		len(p.Hosts), p.Covered, p.Total, 100*p.Frac())
	fmt.Printf("  versus %d per-EdgeCO deployments: %d sites saved\n", cmp.EdgeCOCount, cmp.SitesSaved)
	fmt.Println("\n  first hosts chosen (by marginal coverage):")
	for i, h := range p.Hosts {
		if i >= 5 {
			fmt.Printf("    ... and %d more\n", len(p.Hosts)-5)
			break
		}
		fmt.Printf("    %-40s +%d EdgeCOs\n", h, p.PerHost[i])
	}
}
