// Mobile ship: the §7 case study — ship a phone per carrier across the
// country, watch the IPv6 address bits change with geography and
// re-registration, and infer each carrier's regional architecture.
//
//	go run ./examples/mobile_ship
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ipalloc"
)

func main() {
	fmt.Println("shipping phones across 12 itineraries for three carriers...")
	st := core.NewMobileStudy(51, core.WithParallelism(2))

	// Show a few raw rounds for one carrier: the inference's input.
	fmt.Println("\nsample AT&T rounds (address bits move with the truck):")
	shown := 0
	for _, r := range st.Rounds("att-mobile") {
		if !r.OK {
			continue
		}
		if shown++; shown > 6 {
			break
		}
		fmt.Printf("  tower=(%5.1f,%7.1f) user=%s region-bits=%#02x pgw-bits=%#x\n",
			r.TowerLoc.Lat, r.TowerLoc.Lon, r.UserAddr,
			ipalloc.V6Bits(r.UserAddr, 32, 8), ipalloc.V6Bits(r.UserAddr, 40, 4))
	}

	fmt.Println("\ninferred address plans and architectures (Fig. 16 / Fig. 17):")
	for _, c := range core.CarrierNames {
		a := st.Analysis(c)
		fmt.Printf("  %-10s carrier-prefix=/%d region-field=%v pgw-field=%v arch=%s\n",
			c, a.UserPrefixLen, a.RegionField, a.PGWField, a.Arch)
		for _, lv := range a.GeoLevels {
			fmt.Printf("             geo level /%d: %d changes across the journey, %d values\n",
				lv.PrefixLen, lv.Changes, lv.DistinctValues)
		}
		if len(a.Providers) > 0 {
			fmt.Printf("             upstream providers: %v\n", a.Providers)
		}
	}

	fmt.Println("\npacket gateways per region (Tables 7/8, inferred vs truth):")
	for _, c := range []string{"att-mobile", "verizon"} {
		fmt.Printf("  %s:\n", c)
		for _, r := range st.PGWTable(c) {
			marker := ""
			if r.Inferred != r.Truth {
				marker = "  <- differs"
			}
			fmt.Printf("    %-8s inferred=%d truth=%d%s\n", r.Region, r.Inferred, r.Truth, marker)
		}
	}
}
