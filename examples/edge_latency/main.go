// Edge latency: the §5.5 edge-computing study — measure minimum RTTs
// from every U.S. cloud region to the inferred EdgeCOs, reproduce the
// Connecticut anomaly of Fig. 9, and show that AggCOs (not EdgeCOs) are
// the efficient edge-compute placement per Fig. 10.
//
//	go run ./examples/edge_latency
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	st := core.NewCableStudy(7, core.WithParallelism(4))
	fmt.Println("mapping the cable operators (the latency study runs on the inferred graphs)...")
	st.Result("comcast")
	st.Result("charter")

	fmt.Println("\nNortheast medians from each cloud's closest region (Fig. 9):")
	rows := st.Figure9(100)
	var last string
	for _, r := range rows {
		if r.Provider != last {
			fmt.Printf("  %s (closest region %s):\n", r.Provider, r.Region)
			last = r.Provider
		}
		fmt.Printf("    %s %5.1f ms  (%d EdgeCOs)\n", r.State, r.MedianMs, r.Targets)
	}
	fmt.Println("  -> Connecticut pays a penalty despite being geographically closest:")
	fmt.Println("     its regional network reaches the backbone through the Massachusetts AggCOs.")

	fmt.Println("\nwhere should edge compute live? (Fig. 10)")
	fig := st.Figure10(50, 600)
	fmt.Printf("  EdgeCOs within 5 ms of the nearest cloud VM:  %4.0f%%\n", 100*fig.CloudToEdge.At(5))
	fmt.Printf("  EdgeCOs within 5 ms of their own AggCO:       %4.0f%%\n", 100*fig.AggToEdge.At(5))
	fmt.Println("  -> pushing compute into the AggCOs meets the 5 ms AR/VR budget for most users")
	fmt.Println("     without deploying into every EdgeCO (the paper's §8 recommendation).")

	com := st.RedundancyStats("comcast")
	cha := st.RedundancyStats("charter")
	fmt.Printf("\n  and there are only 1/%.1f as many AggCOs as EdgeCOs to equip.\n",
		float64(com.EdgeCOs+cha.EdgeCOs)/float64(com.AggCOs+cha.AggCOs))
}
