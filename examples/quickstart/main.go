// Quickstart: synthesize a single cable regional network, run the
// paper's two-phase mapping pipeline against it, and print the inferred
// CO topology next to the ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"net/netip"

	"repro/internal/comap"
	"repro/internal/topogen"
	"repro/internal/vclock"
)

func main() {
	// A scenario holds the simulated internetwork: a national transit
	// backbone plus the public clouds are always present.
	scenario := topogen.NewScenario(42)

	// Build a one-region cable operator: a dual-AggCO region in the
	// Portland area with 20 EdgeCOs, Comcast-style rDNS.
	profile := topogen.ComcastProfile()
	profile.Regions = []topogen.CableRegionSpec{{
		Name:     "bverton",
		Anchor:   "Beaverton",
		Backbone: []string{"Seattle", "Sunnyvale"},
		Type:     topogen.DualAgg,
		EdgeCOs:  20,
	}}
	isp := scenario.BuildCable(profile)

	// Vantage points: a few transit-hosted probes around the country.
	var vps []netip.Addr
	for _, city := range []string{"Seattle", "San Francisco", "Denver", "Chicago", "New York"} {
		vps = append(vps, scenario.AddTransitVP(city).Addr)
	}

	// Run the paper's pipeline: /24 sweep, rDNS-targeted traceroutes,
	// MPLS revelation, alias resolution, CO mapping, graph refinement.
	// Parallelism fans probes across CPU cores; the result is
	// byte-identical at any worker count (see internal/probesched).
	campaign := &comap.Campaign{
		Net:         scenario.Net,
		DNS:         scenario.DNS,
		Clock:       vclock.New(scenario.Epoch()),
		ISP:         "comcast",
		VPs:         vps,
		Announced:   isp.Announced,
		Parallelism: 4,
	}
	result := comap.Run(campaign)

	g := result.Inference.Regions["bverton"]
	if g == nil {
		fmt.Println("no region inferred — try more vantage points")
		return
	}

	truth := isp.Regions["bverton"]
	fmt.Printf("inferred region %q: %d COs, %d edges, type %s (truth: %d COs)\n",
		g.Region, len(g.COs), len(g.Edges), g.Classify(), len(truth.COs))

	fmt.Println("\naggregation COs (out-degree above mean+stddev):")
	for _, key := range g.AggCOs() {
		fmt.Printf("  %s serves %d EdgeCOs\n", key, g.OutDegree(key))
	}

	fmt.Println("\nbackbone entry points:")
	for _, e := range g.Entries {
		fmt.Printf("  %s -> %v\n", e.From, e.FirstCOs)
	}

	fmt.Printf("\nmapping: %d addresses mapped to COs (p2p subnets inferred as /%d)\n",
		result.Mapping.Stats.Final, result.Inference.P2PBits)
}
