// AT&T San Diego: the §6 case study — bootstrap the region inventory
// from lightspeed rDNS, map the MPLS-hidden San Diego topology with
// McTraceroute vantage points and DPR, cluster routers into EdgeCOs via
// shared last-mile links, and measure the Table 2 latency disparity.
//
//	go run ./examples/att_sandiego
package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
)

func main() {
	fmt.Println("building the AT&T-like telco and driving to every McDonald's in San Diego...")
	st := core.NewATTStudy(21, core.WithParallelism(4))

	onATT := len(st.HotspotVPs)
	fmt.Printf("%d of %d restaurants buy their WiFi uplink from the telco (paper: 23 of 58)\n",
		onATT, len(st.Hotspots))

	fig := st.Figure13()
	fmt.Println("\ninferred San Diego topology (Fig. 13):")
	fmt.Printf("  backbone routers: %d (one Long-Lines-era BackboneCO: %v, full mesh: %v)\n",
		fig.BackboneRouters, fig.BackboneCOs == 1, fig.FullMesh)
	fmt.Printf("  aggregation routers: %d\n", fig.AggRouters)
	fmt.Printf("  edge routers: %d forming %d EdgeCOs (%d dual-router, %d dual-homed)\n",
		fig.EdgeRouters, fig.EdgeCOs, fig.TwoRouterEdges, fig.DualHomedEdges)

	edge, agg := st.Table6()
	fmt.Println("\nrouter address blocks (Table 6):")
	for _, p := range edge {
		fmt.Printf("  EdgeCO %s\n", p)
	}
	for _, p := range agg {
		fmt.Printf("  AggCO  %s\n", p)
	}

	fmt.Println("\nlatency from a Los Angeles cloud VM to EdgeCO devices (§6.3):")
	lat := st.EdgeLatency(100)
	var ms []float64
	for _, d := range lat.PerDevice {
		ms = append(ms, float64(d)/float64(time.Millisecond))
	}
	sort.Float64s(ms)
	var mean float64
	for _, v := range ms {
		mean += v
	}
	mean /= float64(len(ms))
	fmt.Printf("  %d devices, mean %.1fms, range %.1f-%.1fms\n", len(ms), mean, ms[0], ms[len(ms)-1])
	fmt.Println("  slowest devices (the distant desert offices):")
	for _, v := range ms[len(ms)-4:] {
		fmt.Printf("    %.1fms (%.1fx the mean)\n", v, v/mean)
	}
}
